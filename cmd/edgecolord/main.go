// Command edgecolord is the edge-coloring daemon: an HTTP/JSON front end
// over the shared serving pool (distec.NewPool), plus a load-driving client
// mode for exercising a running daemon.
//
// Serve (default):
//
//	edgecolord -addr :8405 -workers 0 -queue 0 -cache 32
//
//	POST   /v1/color                color a graph (JSON; see colorRequest)
//	POST   /v1/session              create a dynamic session (color + maintain)
//	GET    /v1/session/{id}         session coloring + stats
//	POST   /v1/session/{id}/update  apply a batch of edge inserts/deletes
//	DELETE /v1/session/{id}         drop a session
//	GET    /v1/stats                pool metrics + daemon counters (JSON)
//	GET    /metrics                 the same registry in Prometheus text format
//	GET    /healthz                 liveness
//
// With -pprof the daemon additionally serves net/http/pprof under
// /debug/pprof/ for live CPU, heap, and contention profiling.
//
// One coloring per POST /v1/color: the graph as an edge list, optionally an
// algorithm, palette, seed, per-edge lists (list coloring), and a partial
// coloring (extension). Every response is verified server-side before it is
// returned. Example:
//
//	curl -s localhost:8405/v1/color -d '{"graph":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}'
//
// A dynamic session keeps a live network's coloring server-side and repairs
// it incrementally under edge updates (distec.NewDynamic over the shared
// pool), so a small update never recolors the whole graph:
//
//	curl -s localhost:8405/v1/session -d '{"graph":{"n":4,"edges":[[0,1],[1,2]]}}'
//	curl -s localhost:8405/v1/session/<id>/update -d '{"updates":[{"op":"insert","u":2,"v":3}]}'
//
// Drive (client mode): replay a synthetic request mix against a daemon at a
// fixed rate and report throughput and latency quantiles:
//
//	edgecolord -drive http://localhost:8405 -rate 20 -duration 10s -mix small=6,medium=3,large=1
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/metrics"
	"github.com/distec/distec/internal/persist"
	"github.com/distec/distec/internal/trace"
)

func main() {
	var (
		addr    = flag.String("addr", ":8405", "listen address (serve mode)")
		workers = flag.Int("workers", 0, "pool worker lanes (0: one per core)")
		queue   = flag.Int("queue", 0, "pool queue depth (0: 4x workers)")
		small   = flag.Int("small", 0, "small-job entity threshold (0: default)")
		cache   = flag.Int("cache", 0, "result cache entries (0: default, <0: disabled)")

		dataDir     = flag.String("data-dir", "", "persist dynamic sessions (snapshot + WAL) under this directory and recover them on boot")
		fsyncMode   = flag.String("fsync", "always", "session durability: always (fsync per batch, survives OS crashes) or none (kernel write per batch, survives process crashes)")
		walCompact  = flag.Int64("wal-compact-bytes", persist.DefaultCompactBytes, "compact a session (fresh snapshot, retired WAL) once its WAL exceeds this size")
		diffCompact = flag.Bool("diff-compact", false, "compact with appended differential snapshots when smaller than a full rewrite")
		sessionTTL  = flag.Duration("session-ttl", 30*time.Minute, "evict dynamic sessions idle longer than this (0: never evict)")
		maxResident = flag.Int("max-resident", defaultMaxResident, "with -data-dir: sessions resident in memory at once; the least-recently-used beyond it passivate to disk and rehydrate on access")
		maxSess     = flag.Int("max-sessions", 0, "registry bound on live sessions (0: 64 memory-only, 4096 with -data-dir)")

		follow       = flag.String("follow", "", "warm-standby mode: replicate every session from the leader at this base URL into -data-dir; session traffic answers 503 until promotion")
		followPoll   = flag.Duration("follow-poll", 500*time.Millisecond, "follower: session-list poll interval and leader health-check cadence")
		promoteAfter = flag.Duration("promote-after", 0, "follower: promote to serving once the leader has been unreachable this long (0: promote only on POST /v1/promote)")
		pprofFlag    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (CPU, heap, block profiles on the live daemon)")
		logFormat    = flag.String("log-format", "text", "structured log format on stderr: text or json")

		drive    = flag.String("drive", "", "drive mode: base URL of a running daemon")
		rate     = flag.Float64("rate", 20, "drive: requests per second")
		duration = flag.Duration("duration", 5*time.Second, "drive: how long to drive")
		mix      = flag.String("mix", "small=6,medium=3,large=1", "drive: request mix weights (small,medium,large)")
	)
	flag.Parse()

	if *drive != "" {
		classes, err := parseMix(*mix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgecolord:", err)
			os.Exit(2)
		}
		sum, err := driveLoad(*drive, *rate, *duration, classes, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgecolord:", err)
			os.Exit(1)
		}
		if sum.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgecolord:", err)
		os.Exit(2)
	}
	if *fsyncMode != "always" && *fsyncMode != "none" {
		fmt.Fprintf(os.Stderr, "edgecolord: unknown -fsync mode %q (want always or none)\n", *fsyncMode)
		os.Exit(2)
	}
	// One registry serves both observability surfaces: the pool, cache,
	// session, and persistence subsystems all register here, GET /metrics
	// renders it, and /v1/stats reads the same counters — the two surfaces
	// cannot diverge.
	reg := metrics.New()
	pool := distec.NewPool(distec.PoolOptions{
		Workers:    *workers,
		QueueDepth: *queue,
		SmallJob:   *small,
		CacheSize:  *cache,
		Metrics:    reg,
	})
	// Recovery runs before the listener opens: every persisted session is
	// live again — WAL replayed, verified, re-registered under its original
	// ID — before the first request can reach it.
	d, err := newDaemon(pool, daemonConfig{
		dataDir:      *dataDir,
		fsync:        *fsyncMode == "always",
		compactBytes: *walCompact,
		diffCompact:  *diffCompact,
		sessionTTL:   *sessionTTL,
		maxSessions:  *maxSess,
		maxResident:  *maxResident,
		follow:       *follow,
		followPoll:   *followPoll,
		promoteAfter: *promoteAfter,
		pprof:        *pprofFlag,
		metrics:      reg,
		logger:       logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		logger.Info("session recovery complete", "data_dir", *dataDir, "fsync", *fsyncMode,
			"recovered", d.recovered, "failed", d.recoveryFailures)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: d.mux,
		// Slow-client bounds: a stalled or trickling connection must not
		// pin a handler goroutine (and up to maxBodyBytes of buffer)
		// forever. Reads are generous because bodies can carry 10⁶-edge
		// graphs. The write deadline here only bounds the job phase; once a
		// result is in hand, the handler extends the deadline per-request
		// (see server.respond) so a job that legitimately used its full
		// 5-minute budget still gets the response-transfer budget on top —
		// with a shared deadline, exactly those responses were computed and
		// then lost on a connection that could no longer write.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      maxJobTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutdown signal received, draining")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Shutdown returns only once in-flight requests have drained (or
		// the grace period expires); ListenAndServe returns immediately.
		srv.Shutdown(ctx)
	}()
	logger.Info("serving", "addr", *addr,
		"workers", pool.Stats().Workers, "queue", pool.Stats().QueueDepth)
	err = srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		// Graceful path: wait for the drain before tearing down the pool,
		// so in-flight handlers finish their jobs and write their responses.
		<-drained
		err = nil
	}
	pool.Close()
	// Quiesce the sessions last: in-flight compactions finish and the WAL
	// files close cleanly (recovery handles an unclean exit regardless).
	d.close()
	if err != nil {
		logger.Error("server error", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's structured logger on stderr: text for
// humans at a terminal, json for log pipelines.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// maxBodyBytes bounds one request body (a 10⁶-edge graph is ~16 MB of JSON).
const maxBodyBytes = 64 << 20

// maxGraphNodes bounds graph.n: the node count allocates O(n) regardless of
// body size, so without a cap a 40-byte request naming n=2·10⁹ would OOM
// the daemon. 2²² nodes comfortably covers any graph maxBodyBytes can carry
// edges for.
const maxGraphNodes = 1 << 22

// maxPalette bounds the requested palette for the same reason: the library
// allocates O(palette) scratch (uniform lists, extension pruning) before
// any palette-vs-graph sanity check can reject it. Meaningful palettes are
// at most 2Δ−1 < 2·maxGraphNodes.
const maxPalette = 1 << 23

// maxJobTimeout is the ceiling on client-requested timeout_ms: without it,
// a handful of requests naming day-long timeouts would pin lanes and
// admission slots for as long as their connections stay open.
const maxJobTimeout = 5 * time.Minute

// responseWriteBudget is the per-request write budget granted once a result
// is ready: the job phase is bounded by maxJobTimeout separately, so the
// response transfer gets its own window instead of whatever the job left
// of the connection's shared WriteTimeout.
const responseWriteBudget = 2 * time.Minute

// defaultMaxSessions bounds the number of live dynamic sessions when the
// registry is memory-only: each pins a graph and its coloring in memory for
// as long as the client keeps it.
const defaultMaxSessions = 64

// defaultMaxSessionsDurable is the registry bound with -data-dir: sessions
// beyond the residency limit passivate to disk, so the registry can hold
// far more sessions than fit in memory at once.
const defaultMaxSessionsDurable = 4096

// defaultMaxResident bounds how many durable sessions stay resident in
// memory at once; the least-recently-used beyond it passivate to disk and
// rehydrate transparently on their next touch.
const defaultMaxResident = 64

// maxUpdatesPerBatch bounds one session update batch; longer streams are
// split by the client into multiple requests, each with its own timeout.
const maxUpdatesPerBatch = 100000

// maxSessionEdges bounds a session's cumulative graph size, tombstones
// included: the underlying graph is append-only, so without this cap a
// single session could grow the daemon's memory without limit through
// insert batches (every insert appends permanently; deletes only
// tombstone).
const maxSessionEdges = 1 << 22

// colorRequest is the body of POST /v1/color.
type colorRequest struct {
	Graph graphSpec `json:"graph"`
	// Algorithm is one of bko, bko-theory, pr01, greedy-classes, randomized,
	// vizing (default bko).
	Algorithm string `json:"algorithm,omitempty"`
	// Palette overrides the palette size (default 2Δ−1, or Δ+1 for vizing;
	// required with lists).
	Palette int `json:"palette,omitempty"`
	// Seed feeds the randomized algorithm.
	Seed uint64 `json:"seed,omitempty"`
	// Lists, when present, selects (deg(e)+1)-list coloring: one ascending
	// color list per edge. Requires palette.
	Lists [][]int `json:"lists,omitempty"`
	// Partial, when present, selects extension: partial[e] ≥ 0 keeps that
	// color, −1 marks an edge to complete. Requires lists and palette.
	Partial []int `json:"partial,omitempty"`
	// TimeoutMS bounds the job (0: the server's default of 60 s; values
	// above the server's 5-minute ceiling are clamped to it, so clients
	// cannot pin lanes and admission slots indefinitely).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// graphSpec is a plain edge-list graph.
type graphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// colorResponse is the body of a successful POST /v1/color. Trace is the
// round-level solve summary, present only when the request asked for it
// with ?trace=1 (traced requests bypass the result cache: a cache hit
// runs zero rounds and would trace as empty).
type colorResponse struct {
	Colors     []int          `json:"colors"`
	Rounds     int            `json:"rounds"`
	Messages   int64          `json:"messages"`
	Palette    int            `json:"palette"`
	ColorsUsed int            `json:"colors_used"`
	Verified   bool           `json:"verified"`
	DurationMS float64        `json:"duration_ms"`
	Trace      *trace.Summary `json:"trace,omitempty"`
}

// statsResponse is the body of GET /v1/stats: the pool snapshot plus the
// daemon counters, all read from the same registry-backed counters the
// Prometheus endpoint renders, plus build identity so dashboards and the
// crash-recovery harness can tell daemon generations apart.
type statsResponse struct {
	distec.PoolStats
	UptimeSeconds float64 `json:"uptime_seconds"`
	// GoVersion and BuildRevision identify the binary (runtime.Version and
	// the VCS revision stamped into the build, "unknown" without one).
	GoVersion     string `json:"go_version"`
	BuildRevision string `json:"build_revision"`
	daemonCounters
	Sessions int `json:"sessions"`
	// SessionsResident counts the sessions currently held in memory; the
	// remainder are passivated to disk and rehydrate on access.
	SessionsResident int `json:"sessions_resident"`
	// SessionsRecovered/RecoveryFailures report the boot-time recovery of
	// persisted sessions (-data-dir).
	SessionsRecovered int `json:"sessions_recovered"`
	RecoveryFailures  int `json:"recovery_failures"`
}

// daemonCounters is the daemon's own counter block, snapshotted in one
// place (see counterSnapshot) so a scrape can never read the fields at
// wildly different instants through separate accessor calls.
type daemonCounters struct {
	HTTPRequests uint64 `json:"http_requests"`
	HTTPErrors   uint64 `json:"http_errors"`
	// SessionCreates/SessionDeletes/SessionEvictions count registry
	// lifecycle events (evictions are the TTL sweeper's reclaims);
	// SessionClosedRejects counts update batches that lost the race with a
	// delete or eviction and were answered 410 Gone.
	SessionCreates       uint64 `json:"session_creates"`
	SessionDeletes       uint64 `json:"session_deletes"`
	SessionEvictions     uint64 `json:"session_evictions"`
	SessionClosedRejects uint64 `json:"session_closed_rejects"`
}

// sessionRequest is the body of POST /v1/session: the graph to keep live,
// with the same knobs as colorRequest minus lists/partial (sessions maintain
// uniform-palette colorings).
type sessionRequest struct {
	Graph     graphSpec `json:"graph"`
	Algorithm string    `json:"algorithm,omitempty"`
	Palette   int       `json:"palette,omitempty"`
	Seed      uint64    `json:"seed,omitempty"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// sessionResponse is the body of session create/get responses. Seq is the
// session's applied-batch sequence number — after a daemon restart it tells
// the client exactly how much of its update history was made durable.
type sessionResponse struct {
	SessionID  string              `json:"session_id"`
	Colors     []int               `json:"colors"`
	Palette    int                 `json:"palette"`
	Seq        uint64              `json:"seq"`
	Stats      distec.DynamicStats `json:"stats"`
	Verified   bool                `json:"verified"`
	DurationMS float64             `json:"duration_ms"`
}

// updateRequest is the body of POST /v1/session/{id}/update: an ordered
// batch of edge updates applied as one job on the pool's shared lanes.
type updateRequest struct {
	Updates   []distec.Update `json:"updates"`
	TimeoutMS int             `json:"timeout_ms,omitempty"`
}

// updateResponse reports one applied batch. Results holds one entry per
// applied update, in order (on error, the applied prefix's length arrives
// in the error body instead).
type updateResponse struct {
	Results    []distec.UpdateResult `json:"results"`
	Seq        uint64                `json:"seq"`
	Stats      distec.DynamicStats   `json:"stats"`
	Verified   bool                  `json:"verified"`
	DurationMS float64               `json:"duration_ms"`
	// Trace is the round-level repair summary, present under ?trace=1.
	Trace *trace.Summary `json:"trace,omitempty"`
}

// daemonConfig is the serve-mode configuration newDaemon needs beyond the
// pool: session durability and lifecycle policy.
type daemonConfig struct {
	// dataDir enables session persistence: each dynamic session lives in
	// dataDir/<id> as a snapshot plus WAL, journaled on every applied
	// batch, compacted in the background, and recovered on boot. Empty
	// keeps sessions memory-only (the pre-persistence behavior).
	dataDir string
	// fsync selects durable writes (fsync per batch and snapshot); without
	// it writes still reach the kernel per batch, surviving process
	// crashes but not OS crashes.
	fsync bool
	// compactBytes is the per-session WAL size that triggers compaction
	// (0: persist.DefaultCompactBytes); diffCompact serves compactions with
	// appended differential snapshots when they are smaller than a full
	// snapshot rewrite.
	compactBytes int64
	diffCompact  bool
	// sessionTTL evicts sessions idle longer than this — the fix for
	// abandoned sessions pinning the registry cap forever. 0 disables.
	sessionTTL time.Duration
	// maxSessions bounds the registry (0: 64 memory-only, 4096 with a data
	// dir); maxResident bounds how many durable sessions are resident in
	// memory at once (0: 64; ignored without a data dir, where every
	// session is memory-only and can never passivate).
	maxSessions int
	maxResident int
	// follow, when set, boots the daemon as a warm standby: it tails every
	// session of the leader at this base URL into its own data dir and
	// answers session traffic 503 until promoted (POST /v1/promote, or
	// automatically once the leader has been unreachable for
	// promoteAfter > 0). followPoll is the session-list poll interval.
	follow       string
	followPoll   time.Duration
	promoteAfter time.Duration
	// pprof serves net/http/pprof under /debug/pprof/.
	pprof bool
	// metrics is the registry every subsystem reports into; the pool must
	// have been created with the same one. newDaemon creates a fresh
	// registry when nil (tests), losing only the pool families.
	metrics *metrics.Registry
	// logger receives the daemon's structured log stream (access lines,
	// startup, recovery). nil discards — the default for tests.
	logger *slog.Logger
}

// session is one registry entry: the live coloring, its durability log
// (nil without -data-dir), and the idle-eviction clock. A durable session
// is not always resident: passivation drops d and log (the state lives on
// disk) and the next touch rehydrates them.
type session struct {
	id string
	// mu serializes residency transitions (passivate, rehydrate, drop); d
	// and log are only replaced under it. Handlers that already hold a d
	// may keep using it across a passivation — a passivated Dynamic stays
	// readable, and writes fail with ErrSessionPassivated.
	mu  sync.Mutex
	d   *distec.Dynamic
	log *persist.Log
	// dropped marks a deleted/evicted/retired session so a racing handler
	// cannot rehydrate it back to life from files being removed.
	dropped bool
	// resident mirrors d != nil, readable without mu for victim selection.
	resident atomic.Bool
	// last is the UnixNano of the last client touch (create, get, update);
	// inflight counts batches currently executing, so the idle sweeper
	// never evicts a session mid-batch just because the batch outlived the
	// TTL, and the passivator prefers sessions with nothing running.
	last     atomic.Int64
	inflight atomic.Int32
}

func (sess *session) touch() { sess.last.Store(time.Now().UnixNano()) }

// server is the daemon's HTTP state: the shared pool, the metrics
// registry with the daemon's own counters on it, and the dynamic-session
// registry.
type server struct {
	pool  *distec.Pool
	cfg   daemonConfig
	start time.Time
	// logger is cfg.logger, or a discard logger when the config left it
	// nil (tests), so call sites never test for nil.
	logger *slog.Logger

	// reg is the one registry behind both GET /metrics and /v1/stats; the
	// counters below are registered on it, so the two surfaces read the
	// very same atomics.
	reg       *metrics.Registry
	requests  *metrics.Counter
	errors    *metrics.Counter
	evictions *metrics.Counter
	creates   *metrics.Counter
	deletes   *metrics.Counter
	// closedRejects counts updates answered 410 Gone because the session
	// closed mid-flight (deleted or evicted while the batch ran).
	closedRejects *metrics.Counter
	// updateLatency observes every session update batch end to end;
	// updateTiers splits applied updates by how they were served (delete,
	// or inserts by repair tier: greedy / repaired / augmented).
	updateLatency *metrics.Histogram
	updateTiers   map[string]*metrics.Counter
	// recoveryTime observes per-session boot recovery (open + replay +
	// verify), successes only; rehydrateTime the same pipeline when a
	// passivated session is brought back on access.
	recoveryTime  *metrics.Histogram
	rehydrateTime *metrics.Histogram
	// passivations and rehydrations count residency transitions;
	// residentCount is the live resident-session gauge behind them.
	passivations  *metrics.Counter
	rehydrations  *metrics.Counter
	residentCount atomic.Int64
	// solveRounds/solveQuiescent/roundDuration aggregate the convergence
	// behavior of traced solves (?trace=1): how many rounds a solve takes,
	// how many of them were quiescent (pure simulation overhead), and how
	// long individual rounds run.
	solveRounds    *metrics.Histogram
	solveQuiescent *metrics.Histogram
	roundDuration  *metrics.Histogram
	persistM       *persist.Metrics
	// recovered and recoveryFailures count boot-time session recovery
	// outcomes (written once before the listener opens).
	recovered        int
	recoveryFailures int

	mux http.Handler

	// following is true while the daemon is a warm standby (-follow):
	// session traffic answers 503, the follower loop tails the leader, and
	// promotion flips it false after recovering the replicated state.
	following atomic.Bool
	repl      *follower

	sessMu   sync.Mutex
	sessions map[string]*session

	stopSweep chan struct{}
	closeOnce sync.Once

	// afterJob, when non-nil, runs after a handler's compute phase and
	// before its response is written — a test seam standing in for a job
	// that consumed the connection's whole write window. beforeUpdate runs
	// between a session update's registry lookup and its batch — the seam
	// that widens the delete/update race window for the regression test.
	afterJob     func()
	beforeUpdate func()
}

// newDaemon builds the daemon state over a shared pool (separated from main
// for tests that need the *server), recovering every persisted session
// before any request can be served. Recovery is resilient: a session whose
// files fail checksum, replay, or verification is skipped (and counted),
// never served wrong.
func newDaemon(pool *distec.Pool, cfg daemonConfig) (*server, error) {
	reg := cfg.metrics
	if reg == nil {
		reg = metrics.New()
	}
	s := &server{pool: pool, cfg: cfg, start: time.Now(), reg: reg, sessions: make(map[string]*session), stopSweep: make(chan struct{})}
	s.logger = cfg.logger
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	s.registerMetrics()
	if cfg.follow != "" && cfg.dataDir == "" {
		return nil, errors.New("-follow requires -data-dir (the standby needs somewhere to replicate to)")
	}
	if cfg.dataDir != "" {
		if err := os.MkdirAll(cfg.dataDir, 0o755); err != nil {
			return nil, fmt.Errorf("data dir: %w", err)
		}
		if cfg.follow == "" {
			s.recoverSessions()
		} else {
			// A follower's data dir is owned by the replication loop until
			// promotion; recovery runs then, over whatever was replicated.
			s.following.Store(true)
			s.repl = newFollower(s)
			go s.repl.run()
		}
	}
	if cfg.sessionTTL > 0 {
		go s.sweepLoop()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/v1/color", s.handleColor)
	mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/session/{id}", s.handleSessionGet)
	mux.HandleFunc("POST /v1/session/{id}/update", s.handleSessionUpdate)
	mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/replication/status", s.handleReplicationStatus)
	mux.HandleFunc("POST /v1/promote", s.handlePromote)
	if cfg.dataDir != "" {
		mux.HandleFunc("GET /v1/replicate", s.handleReplicateList)
		mux.HandleFunc("GET /v1/replicate/{id}", s.handleReplicateSession)
	}
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = s.accessLog(mux)
	return s, nil
}

// requestInfo is the per-request record the access-log middleware and
// the handlers fill together: the middleware mints the ID and writes the
// final log line; handlers report the job size they decoded. Handlers
// run synchronously inside ServeHTTP, so plain fields suffice.
type requestInfo struct {
	id string
	// jobSize is the request's decoded work size — edges for coloring
	// and session creation, batch updates for session updates; −1 for
	// requests that carry no job (stats, metrics, health).
	jobSize int
}

type requestInfoKey struct{}

// requestFrom returns the request's info record, or nil outside the
// access-log middleware (direct handler tests).
func requestFrom(ctx context.Context) *requestInfo {
	ri, _ := ctx.Value(requestInfoKey{}).(*requestInfo)
	return ri
}

// setJobSize records the decoded job size for the access log.
func setJobSize(ctx context.Context, n int) {
	if ri := requestFrom(ctx); ri != nil {
		ri.jobSize = n
	}
}

// statusWriter captures the response status for the access log. Unwrap
// keeps http.NewResponseController (see respond) reaching the real
// connection's deadline controls through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// accessLog wraps the daemon's mux: accept the client's X-Request-Id (or
// mint one), echo it on the response, and emit one structured access-log
// line per request — the ID is the join key between these lines, traced
// solve summaries, and client-side records.
func (s *server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = trace.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ri := &requestInfo{id: id, jobSize: -1}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, ri)))
		status := sw.status
		if status == 0 {
			// Nothing was written: net/http sends 200 with an empty body.
			status = http.StatusOK
		}
		attrs := []any{
			"request_id", id,
			"method", r.Method,
			"route", r.URL.Path,
			"status", status,
			"duration_ms", float64(time.Since(start).Microseconds()) / 1000,
		}
		if ri.jobSize >= 0 {
			attrs = append(attrs, "job_size", ri.jobSize)
		}
		s.logger.Info("request", attrs...)
	})
}

// registerMetrics creates the daemon's own counters on the registry —
// everything /v1/stats reports beyond the pool lives here, so both
// surfaces read identical state.
func (s *server) registerMetrics() {
	reg := s.reg
	s.requests = reg.Counter("distec_http_requests_total", "API requests received.")
	s.errors = reg.Counter("distec_http_errors_total", "API requests answered with an error status.")
	s.creates = reg.Counter("distec_session_creates_total", "Dynamic sessions created.")
	s.deletes = reg.Counter("distec_session_deletes_total", "Dynamic sessions deleted by clients.")
	s.evictions = reg.Counter("distec_session_evictions_total", "Idle dynamic sessions reclaimed by the TTL sweeper.")
	s.closedRejects = reg.Counter("distec_session_closed_rejected_total", "Update batches answered 410 Gone because the session closed mid-flight.")
	s.updateLatency = reg.Histogram("distec_session_update_seconds", "Session update batch latency, end to end.", metrics.LatencyBuckets)
	const tiersHelp = "Applied session updates by service tier: deletes, and inserts served greedily, by conflict-region repair, or by Vizing augmentation."
	s.updateTiers = map[string]*metrics.Counter{
		"delete":    reg.Counter("distec_session_updates_total", tiersHelp, "tier", "delete"),
		"greedy":    reg.Counter("distec_session_updates_total", tiersHelp, "tier", "greedy"),
		"repaired":  reg.Counter("distec_session_updates_total", tiersHelp, "tier", "repaired"),
		"augmented": reg.Counter("distec_session_updates_total", tiersHelp, "tier", "augmented"),
	}
	s.recoveryTime = reg.Histogram("distec_session_recovery_seconds", "Boot-time per-session recovery duration (open, replay, verify), successes only.", metrics.LatencyBuckets)
	s.rehydrateTime = reg.Histogram("distec_session_rehydration_seconds", "Rehydration latency (open, replay, verify) when a passivated session is touched.", metrics.LatencyBuckets)
	s.passivations = reg.Counter("distec_sessions_passivated_total", "Resident sessions evicted to disk by the residency limit.")
	s.rehydrations = reg.Counter("distec_session_rehydrations_total", "Passivated sessions rehydrated from disk on access.")
	reg.GaugeFunc("distec_sessions_resident", "Dynamic sessions resident in memory (each pins its graph and coloring).", func() float64 { return float64(s.residentCount.Load()) })
	s.solveRounds = reg.Histogram("distec_solve_rounds", "Engine-executed rounds per traced solve (?trace=1 requests only).", roundBuckets)
	s.solveQuiescent = reg.Histogram("distec_solve_quiescent_rounds", "Quiescent rounds (no messages sent, no entity halted) per traced solve — pure simulation overhead.", roundBuckets)
	s.roundDuration = reg.Histogram("distec_round_duration_seconds", "Individual engine round duration, observed from traced solves.", metrics.LatencyBuckets)
	s.persistM = &persist.Metrics{}
	s.persistM.Register(reg)
	reg.GaugeFunc("distec_sessions", "Live dynamic sessions.", func() float64 { return float64(s.sessionCount()) })
	reg.CounterFunc("distec_session_recovered_total", "Sessions recovered at boot.", func() uint64 { return uint64(s.recovered) })
	reg.CounterFunc("distec_session_recovery_failures_total", "Sessions that failed boot recovery and were skipped.", func() uint64 { return uint64(s.recoveryFailures) })
	reg.GaugeFunc("distec_uptime_seconds", "Seconds since the daemon booted.", func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("go_goroutines", "Live goroutines.", func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("distec_build_info", "Build identity: constant 1, labeled with the Go version and VCS revision.",
		func() float64 { return 1 }, "go_version", runtime.Version(), "revision", buildRevision())
}

// roundBuckets is the bucket ladder for round-count histograms: solves
// range from a handful of rounds (small graphs, dynamic repairs) to the
// quasi-polylog-in-Δ schedules of large BKO instances.
var roundBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// tracedRequest reports whether the request opted into round-level
// tracing with ?trace=1 (or trace=true).
func tracedRequest(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// newRequestTrace builds the tracer for one traced request, stamped with
// the request ID the access-log middleware minted so the returned
// summary joins with the access log.
func newRequestTrace(ctx context.Context) *trace.Trace {
	tr := trace.New()
	if ri := requestFrom(ctx); ri != nil {
		tr.SetRequestID(ri.id)
	}
	return tr
}

// observeTrace feeds one traced solve into the aggregate convergence
// metrics and returns its summary for the response body.
func (s *server) observeTrace(tr *trace.Trace) *trace.Summary {
	sum := tr.Summary()
	if sum == nil {
		return nil
	}
	s.solveRounds.Observe(float64(sum.Rounds))
	s.solveQuiescent.Observe(float64(sum.QuiescentRounds))
	tr.VisitRounds(func(ev trace.RoundEvent) {
		s.roundDuration.Observe(ev.Duration.Seconds())
	})
	return sum
}

// buildRevision extracts the VCS revision stamped into the binary, or
// "unknown" for builds without one (go test binaries, plain go run).
func buildRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return "unknown"
}

// maxSessionsLimit resolves the registry bound: explicit config, else 64
// memory-only or 4096 with a data dir (sessions beyond the residency limit
// live on disk, not in memory).
func (s *server) maxSessionsLimit() int {
	if s.cfg.maxSessions > 0 {
		return s.cfg.maxSessions
	}
	if s.cfg.dataDir != "" {
		return defaultMaxSessionsDurable
	}
	return defaultMaxSessions
}

// maxResidentLimit resolves the residency bound for durable sessions.
func (s *server) maxResidentLimit() int {
	if s.cfg.maxResident > 0 {
		return s.cfg.maxResident
	}
	return defaultMaxResident
}

// close stops the eviction sweeper, the follower loop, and quiesces every
// session (waiting out in-flight compactions, closing WAL files). Sessions
// stay on disk for the next boot.
func (s *server) close() {
	s.closeOnce.Do(func() { close(s.stopSweep) })
	if s.repl != nil {
		s.repl.stopAndWait()
	}
	s.sessMu.Lock()
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.sessions = make(map[string]*session)
	s.sessMu.Unlock()
	for _, sess := range all {
		s.quiesceSession(sess)
	}
}

// quiesceSession closes one already-unregistered session, keeping its
// files: in-flight batches fail with ErrSessionClosed, the WAL closes
// cleanly, and a racing handler can no longer rehydrate it.
func (s *server) quiesceSession(sess *session) {
	sess.mu.Lock()
	sess.dropped = true
	d, lg := sess.d, sess.log
	sess.d, sess.log = nil, nil
	wasResident := sess.resident.Load()
	sess.resident.Store(false)
	sess.mu.Unlock()
	if d != nil {
		d.Close()
	}
	if lg != nil {
		lg.Close()
	}
	if wasResident {
		s.residentCount.Add(-1)
	}
}

// persistOptions maps the daemon config onto the persistence layer's knobs.
func (s *server) persistOptions() persist.Options {
	return persist.Options{Fsync: s.cfg.fsync, CompactBytes: s.cfg.compactBytes, DiffCompact: s.cfg.diffCompact, Metrics: s.persistM}
}

// recoverSessions re-registers every session persisted under the data dir.
// The first maxResident come back fully live (snapshot restored, WAL
// replayed, coloring verified, original ID kept); the rest register
// passivated after a cheap durability scan, so boot cost and memory stay
// bounded however many sessions the dir holds — each rehydrates (and
// verifies) on its first touch instead.
func (s *server) recoverSessions() {
	entries, err := os.ReadDir(s.cfg.dataDir)
	if err != nil {
		s.logger.Error("session recovery: read data dir", "err", err)
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		start := time.Now()
		var sess *session
		if int(s.residentCount.Load()) < s.maxResidentLimit() {
			sess, err = s.recoverSession(id)
		} else {
			sess, err = s.adoptPassivated(id)
		}
		if err != nil {
			s.logger.Error("session recovery failed", "session", id, "err", err)
			s.recoveryFailures++
			continue
		}
		s.recoveryTime.Observe(time.Since(start).Seconds())
		s.logger.Info("session recovered", "session", id, "resident", sess.resident.Load(),
			"duration_ms", float64(time.Since(start).Microseconds())/1000)
		s.sessMu.Lock()
		s.sessions[id] = sess
		s.sessMu.Unlock()
		s.recovered++
	}
}

// adoptPassivated registers a persisted session without loading it: the
// directory is scanned (checksums, torn tails, sequence chain — everything
// but the coloring replay), and the session rehydrates on first touch.
func (s *server) adoptPassivated(id string) (*session, error) {
	if _, _, _, err := persist.ScanDir(filepath.Join(s.cfg.dataDir, id)); err != nil {
		return nil, err
	}
	sess := &session{id: id}
	sess.touch()
	return sess, nil
}

// recoverSession rebuilds one session from its directory: open the log
// (which repairs a torn WAL tail and finishes an interrupted compaction),
// restore the merged snapshot, replay the surviving records in order, and
// verify the result. Any failure abandons the recovery with the files
// untouched.
func (s *server) recoverSession(id string) (*session, error) {
	dir := filepath.Join(s.cfg.dataDir, id)
	lg, snap, records, err := persist.OpenLog(dir, s.persistOptions())
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lg.Close()
		}
	}()
	// OpenLog's snapshot already has the diff chain merged in — the file
	// on disk alone may be stale, so the parsed value is the truth.
	d, err := distec.NewDynamicFromState(snap, distec.DynamicOptions{Pool: s.pool})
	if err != nil {
		return nil, err
	}
	// Boot recovery runs before the listener accepts anything: there is no
	// request whose deadline could bound this replay, and aborting half-way
	// would just re-run the same work on the next start.
	//distec:nolint ctxflow
	if err := distec.ReplayRecords(context.Background(), d, records); err != nil {
		return nil, err
	}
	if want := snap.Seq + uint64(len(records)); d.Seq() != want {
		return nil, fmt.Errorf("replayed to seq %d, want %d", d.Seq(), want)
	}
	// Never re-serve a coloring that does not independently verify.
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("recovered coloring invalid: %v", err)
	}
	sess := &session{id: id, d: d, log: lg}
	d.SetJournal(s.journalFunc(lg))
	// A WAL already past the threshold is compacted now (synchronously:
	// boot is the cheap moment), so recovery cost stays bounded next time.
	// A compaction failure poisons the log — registering the session anyway
	// would 500 every update with no trace of why — so surface it as a
	// recovery failure and leave the files for the operator (sessionctl).
	if lg.NeedsCompaction() {
		var buf bytes.Buffer
		if err := d.Snapshot(&buf); err != nil {
			return nil, fmt.Errorf("boot compaction snapshot: %w", err)
		}
		if err := lg.Compact(buf.Bytes()); err != nil {
			return nil, fmt.Errorf("boot compaction: %w", err)
		}
	}
	sess.resident.Store(true)
	s.residentCount.Add(1)
	sess.touch()
	ok = true
	return sess, nil
}

// journalFunc builds the session's durability hook: append the applied
// batch to the WAL and, once the WAL outgrows the threshold, capture a
// point-in-time snapshot (in memory, under the session lock) and hand the
// disk work to a background compaction.
func (s *server) journalFunc(lg *persist.Log) distec.JournalFunc {
	// The hook captures its own *Log, not the session: rehydration builds a
	// fresh Dynamic with a fresh hook over a fresh log, so a stale hook can
	// never append to a log that was swapped out from under it.
	// scratch is safe to recycle across batches: the journal runs under the
	// session lock and Append encodes the record before returning.
	var scratch []persist.Update
	return func(b distec.JournalBatch) error {
		if cap(scratch) < len(b.Applied) {
			scratch = make([]persist.Update, len(b.Applied))
		}
		rec := persist.Record{Seq: b.Seq, Updates: scratch[:len(b.Applied)]}
		for i, up := range b.Applied {
			op := persist.OpInsert
			if up.Op == distec.DeleteEdge {
				op = persist.OpDelete
			}
			rec.Updates[i] = persist.Update{Op: op, U: int32(up.U), V: int32(up.V)}
		}
		if err := lg.Append(rec); err != nil {
			return err
		}
		if lg.NeedsCompaction() {
			var buf bytes.Buffer
			if err := b.Snapshot(&buf); err != nil {
				return fmt.Errorf("compaction snapshot: %w", err)
			}
			return lg.CompactAsync(buf.Bytes())
		}
		return nil
	}
}

// sweepLoop periodically evicts idle sessions; see sweepIdle.
func (s *server) sweepLoop() {
	interval := s.cfg.sessionTTL / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-t.C:
			s.sweepIdle()
		}
	}
}

// sweepIdle evicts every session idle longer than the TTL — the fix for
// abandoned sessions occupying the registry cap forever: an evicted session
// is closed (in-flight batches fail with ErrSessionClosed rather than
// mutating a dropped session) and its files are removed, exactly like an
// explicit DELETE. It returns the number evicted; handleSessionCreate calls
// it opportunistically when the registry is full, so one sweep-interval of
// latency never turns into a 503.
func (s *server) sweepIdle() int {
	ttl := s.cfg.sessionTTL
	if ttl <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-ttl).UnixNano()
	var evicted []*session
	s.sessMu.Lock()
	for id, sess := range s.sessions {
		// A session with a batch executing is busy, not abandoned, however
		// long the batch runs; its clock is touched again on completion.
		if sess.last.Load() < cutoff && sess.inflight.Load() == 0 {
			delete(s.sessions, id)
			evicted = append(evicted, sess)
		}
	}
	s.sessMu.Unlock()
	for _, sess := range evicted {
		s.dropSession(sess)
		s.evictions.Add(1)
	}
	return len(evicted)
}

// dropSession tears one already-unregistered session down: close it (late
// and in-flight batches fail with ErrSessionClosed) and remove its files.
// Works on passivated sessions too — there is nothing in memory to close,
// but the files still go.
func (s *server) dropSession(sess *session) {
	s.quiesceSession(sess)
	if s.cfg.dataDir != "" {
		os.RemoveAll(filepath.Join(s.cfg.dataDir, sess.id))
	}
}

// retireSession unregisters and closes a session whose journal failed,
// keeping its files: the durable state (every journaled batch) is intact
// and recoverable on the next boot; only the unjournaled in-memory tail is
// abandoned, exactly as the failed request reported.
func (s *server) retireSession(id string, sess *session) {
	s.sessMu.Lock()
	delete(s.sessions, id)
	s.sessMu.Unlock()
	s.quiesceSession(sess)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.respond(w, http.StatusOK, statsResponse{
		PoolStats:         s.pool.Stats(),
		UptimeSeconds:     time.Since(s.start).Seconds(),
		GoVersion:         runtime.Version(),
		BuildRevision:     buildRevision(),
		daemonCounters:    s.counterSnapshot(),
		Sessions:          s.sessionCount(),
		SessionsResident:  int(s.residentCount.Load()),
		SessionsRecovered: s.recovered,
		RecoveryFailures:  s.recoveryFailures,
	})
}

// counterSnapshot reads every daemon counter into one struct, in one
// place. The counters are independent atomics, so the reads are ordered
// to preserve the block's invariants: each *consuming* counter is read
// before the *producing* counter it is bounded by (deletes, evictions,
// and closed-rejects before creates; errors before requests). A create
// or request landing between the reads then inflates only the producing
// side — a scrape can never report more evictions than creates, or more
// errors than requests, however loaded the daemon is.
func (s *server) counterSnapshot() daemonCounters {
	var c daemonCounters
	c.SessionDeletes = s.deletes.Load()
	c.SessionEvictions = s.evictions.Load()
	c.SessionClosedRejects = s.closedRejects.Load()
	c.SessionCreates = s.creates.Load()
	c.HTTPErrors = s.errors.Load()
	c.HTTPRequests = s.requests.Load()
	return c
}

// handleMetrics renders the registry in the Prometheus text exposition
// format — the same counters /v1/stats reports, scrapable.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

func (s *server) handleColor(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.rejectFollowing(w) {
		return
	}
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req colorRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	g, err := buildGraph(req.Graph)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.Palette > maxPalette {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("palette %d exceeds the daemon's limit of %d", req.Palette, maxPalette))
		return
	}
	setJobSize(r.Context(), g.M())
	ctx, cancel := context.WithTimeout(r.Context(), jobTimeout(req.TimeoutMS))
	defer cancel()

	opts := distec.Options{Algorithm: distec.Algorithm(req.Algorithm), Palette: req.Palette, Seed: req.Seed}
	var tr *trace.Trace
	if tracedRequest(r) {
		tr = newRequestTrace(r.Context())
		opts.Trace = tr
	}
	start := time.Now()
	var res *distec.Result
	switch {
	case req.Partial != nil:
		if req.Lists == nil || req.Palette <= 0 {
			s.fail(w, http.StatusBadRequest, errors.New("partial requires lists and palette"))
			return
		}
		res, err = s.pool.ExtendColoring(ctx, g, req.Partial, req.Lists, req.Palette, opts)
	case req.Lists != nil:
		if req.Palette <= 0 {
			s.fail(w, http.StatusBadRequest, errors.New("lists require palette"))
			return
		}
		res, err = s.pool.ColorEdgesList(ctx, g, req.Lists, req.Palette, opts)
	default:
		res, err = s.pool.ColorEdges(ctx, g, opts)
	}
	if s.afterJob != nil {
		s.afterJob()
	}
	if err != nil {
		// Timeouts/cancellation map to 504/499; server-side defects (a
		// panicking protocol, a diverging run) to 500 so monitoring and
		// retry policies classify them correctly; the rest are properties
		// of the request.
		s.failJob(w, err)
		return
	}
	// Never hand out an unverified coloring: the check is O(m + messages
	// already paid) and turns any engine regression into a loud 500.
	switch {
	case req.Partial != nil:
		// Properness for everyone; list membership only for the edges the
		// server colored (fixed partial entries are legitimately exempt).
		err = distec.Verify(g, res.Colors)
		if err == nil {
			err = verifyExtension(req.Partial, req.Lists, res.Colors)
		}
	case req.Lists != nil:
		err = distec.VerifyList(g, req.Lists, res.Colors)
	default:
		err = distec.Verify(g, res.Colors)
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	var sum *trace.Summary
	if tr != nil {
		sum = s.observeTrace(tr)
	}
	s.respond(w, http.StatusOK, colorResponse{
		Colors:     res.Colors,
		Rounds:     res.Rounds,
		Messages:   res.Messages,
		Palette:    res.Palette,
		ColorsUsed: res.ColorsUsed,
		Verified:   true,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
		Trace:      sum,
	})
}

// handleSessionCreate colors the posted graph on the pool and registers a
// dynamic session maintaining that coloring under updates.
func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.rejectFollowing(w) {
		return
	}
	maxSessions := s.maxSessionsLimit()
	if s.sessionCount() >= maxSessions {
		// A full registry gets one opportunistic idle sweep before the 503:
		// abandoned sessions must never brick session creation for the TTL
		// sweeper's next tick.
		if s.sweepIdle() == 0 {
			s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("session limit %d reached", maxSessions))
			return
		}
	}
	var req sessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	g, err := buildGraph(req.Graph)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if g.M() > maxSessionEdges {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("graph of %d edges exceeds the daemon's session limit of %d", g.M(), maxSessionEdges))
		return
	}
	if req.Palette > maxPalette {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("palette %d exceeds the daemon's limit of %d", req.Palette, maxPalette))
		return
	}
	setJobSize(r.Context(), g.M())
	ctx, cancel := context.WithTimeout(r.Context(), jobTimeout(req.TimeoutMS))
	defer cancel()

	opts := distec.Options{Algorithm: distec.Algorithm(req.Algorithm), Palette: req.Palette, Seed: req.Seed}
	start := time.Now()
	res, err := s.pool.ColorEdges(ctx, g, opts)
	if s.afterJob != nil {
		s.afterJob()
	}
	if err != nil {
		s.failJob(w, err)
		return
	}
	if err := distec.Verify(g, res.Colors); err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	d, err := distec.NewDynamicFrom(g, res.Colors, distec.DynamicOptions{Options: opts, Pool: s.pool})
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	id, err := newSessionID()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	sess := &session{id: id, d: d}
	if s.cfg.dataDir != "" {
		// The session is durable from birth: its initial snapshot is on
		// disk before the client learns the ID, so a crash at any later
		// point recovers it.
		lg, err := persist.CreateLog(filepath.Join(s.cfg.dataDir, id), d.Snapshot, s.persistOptions())
		if err != nil {
			s.fail(w, http.StatusInternalServerError, fmt.Errorf("persist session: %w", err))
			return
		}
		sess.log = lg
		d.SetJournal(s.journalFunc(lg))
	}
	sess.resident.Store(true)
	s.residentCount.Add(1)
	sess.touch()
	s.sessMu.Lock()
	// Re-check under the lock: concurrent creates may have raced past the
	// early bound.
	if len(s.sessions) >= maxSessions {
		s.sessMu.Unlock()
		s.dropSession(sess)
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("session limit %d reached", maxSessions))
		return
	}
	s.sessions[id] = sess
	s.sessMu.Unlock()
	s.creates.Inc()
	// The newcomer may push the resident set past the limit: passivate the
	// coldest sessions (never the one just created).
	s.enforceResidency(sess)
	s.respond(w, http.StatusOK, sessionResponse{
		SessionID:  id,
		Colors:     d.Colors(),
		Palette:    d.Palette(),
		Seq:        d.Seq(),
		Stats:      d.Stats(),
		Verified:   true,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleSessionUpdate applies one update batch to a session as a job on the
// pool's shared lanes, verifying the maintained coloring before responding.
func (s *server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.rejectFollowing(w) {
		return
	}
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if s.beforeUpdate != nil {
		s.beforeUpdate()
	}
	d, err := s.acquire(r.Context(), sess)
	if err != nil {
		s.failAcquire(w, err)
		return
	}
	var req updateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Updates) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty update batch"))
		return
	}
	if len(req.Updates) > maxUpdatesPerBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d updates exceeds the daemon's limit of %d", len(req.Updates), maxUpdatesPerBatch))
		return
	}
	if d.Edges()+len(req.Updates) > maxSessionEdges {
		s.fail(w, http.StatusConflict, fmt.Errorf("session graph at %d edges (tombstones included) would exceed the daemon's limit of %d; recreate the session to compact it", d.Edges(), maxSessionEdges))
		return
	}
	setJobSize(r.Context(), len(req.Updates))
	ctx, cancel := context.WithTimeout(r.Context(), jobTimeout(req.TimeoutMS))
	defer cancel()
	// The tracer rides the context into the session's repair engine (the
	// batch has no per-call Options); distec.Dynamic picks it up there.
	var tr *trace.Trace
	if tracedRequest(r) {
		tr = newRequestTrace(r.Context())
		ctx = trace.NewContext(ctx, tr)
	}

	sess.touch()
	sess.inflight.Add(1)
	start := time.Now()
	results, err := d.ApplyBatch(ctx, req.Updates)
	if errors.Is(err, distec.ErrSessionPassivated) {
		// The residency limit passivated the session between lookup and
		// batch. The interrupted attempt journaled nothing and its memory
		// state was discarded with the Dynamic, so rehydrating and replaying
		// the whole batch applies it exactly once.
		d2, aerr := s.acquire(ctx, sess)
		if aerr != nil {
			sess.inflight.Add(-1)
			sess.touch()
			s.failAcquire(w, aerr)
			return
		}
		d = d2
		results, err = d.ApplyBatch(ctx, req.Updates)
	}
	sess.inflight.Add(-1)
	sess.touch()
	s.updateLatency.Observe(time.Since(start).Seconds())
	s.countTiers(results)
	if s.afterJob != nil {
		s.afterJob()
	}
	if err != nil {
		// The applied prefix holds (the coloring reflects exactly it); tell
		// the client how far the batch got.
		err = fmt.Errorf("applied %d/%d updates: %w", len(results), len(req.Updates), err)
		switch {
		case errors.Is(err, distec.ErrSessionClosed):
			// The session was deleted or evicted while this batch was in
			// flight: it is gone, not malformed.
			s.closedRejects.Inc()
			s.fail(w, http.StatusGone, err)
		case errors.Is(err, distec.ErrJournal):
			// Applied in memory but not journaled: the session's memory
			// state has diverged from its durable state, and any further
			// acknowledged batch would journal with a sequence gap that
			// makes the whole log unrecoverable. Stop serving the session —
			// its files stay, so a restart recovers every batch that WAS
			// made durable.
			s.retireSession(r.PathValue("id"), sess)
			s.fail(w, http.StatusInternalServerError,
				fmt.Errorf("%w; session retired — restart the daemon to recover its last durable state", err))
		case errors.Is(err, distec.ErrSessionPassivated):
			// Passivated again between the retry's rehydrate and batch —
			// possible only under pathological residency pressure. The batch
			// is not applied; the client retries.
			s.fail(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, distec.ErrPaletteExhausted):
			s.fail(w, http.StatusConflict, err)
		default:
			s.failJob(w, err)
		}
		return
	}
	// Never report an unverified maintained coloring: the incremental
	// repair machinery is re-checked against the full graph on every batch.
	if err := d.Verify(); err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	var sum *trace.Summary
	if tr != nil {
		sum = s.observeTrace(tr)
	}
	s.respond(w, http.StatusOK, updateResponse{
		Results:    results,
		Seq:        d.Seq(),
		Stats:      d.Stats(),
		Verified:   true,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
		Trace:      sum,
	})
}

// handleSessionGet reports a session's current coloring and stats.
func (s *server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.rejectFollowing(w) {
		return
	}
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	sess.touch()
	d, err := s.acquire(r.Context(), sess)
	if err != nil {
		s.failAcquire(w, err)
		return
	}
	if err := d.Verify(); err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	s.respond(w, http.StatusOK, sessionResponse{
		SessionID: r.PathValue("id"),
		Colors:    d.Colors(),
		Palette:   d.Palette(),
		Seq:       d.Seq(),
		Stats:     d.Stats(),
		Verified:  true,
	})
}

// handleSessionDelete drops a session: closed (in-flight batches fail with
// ErrSessionClosed instead of mutating a dropped session) and its persisted
// files removed.
func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.rejectFollowing(w) {
		return
	}
	id := r.PathValue("id")
	s.sessMu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.sessMu.Unlock()
	if !ok {
		s.fail(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	s.dropSession(sess)
	s.deletes.Inc()
	s.respond(w, http.StatusOK, map[string]bool{"deleted": true})
}

// countTiers attributes each applied update to its service tier — the
// repair-tier split that shows how hard the palette is working (greedy is
// cheap, repairs bounded, augmentations the expensive last resort).
func (s *server) countTiers(results []distec.UpdateResult) {
	for _, r := range results {
		switch {
		case r.Color < 0:
			s.updateTiers["delete"].Inc()
		case r.Augmented:
			s.updateTiers["augmented"].Inc()
		case r.Repaired:
			s.updateTiers["repaired"].Inc()
		default:
			s.updateTiers["greedy"].Inc()
		}
	}
}

// decodeBody reads one size-bounded JSON request body into req, writing the
// error response (413 for oversized bodies, 400 otherwise) itself; a false
// return means the handler is done.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, req any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, err)
			return false
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *server) session(id string) (*session, bool) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// failJob maps job errors to HTTP statuses, shared by the color and session
// handlers.
func (s *server) failJob(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		s.fail(w, 499, err) // client closed request
	case errors.Is(err, distec.ErrPoolClosed):
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, distec.ErrProtocolPanic), errors.Is(err, distec.ErrRoundLimit):
		s.fail(w, http.StatusInternalServerError, err)
	default:
		s.fail(w, http.StatusBadRequest, err)
	}
}

// jobTimeout resolves a client timeout_ms to the job deadline, clamped to
// the server ceiling.
func jobTimeout(ms int) time.Duration {
	timeout := 60 * time.Second
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > maxJobTimeout {
			timeout = maxJobTimeout
		}
	}
	return timeout
}

// newSessionID returns an unguessable session handle.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	s.respond(w, status, map[string]string{"error": err.Error()})
}

// respond writes one JSON response, first extending the connection's write
// deadline: the server's WriteTimeout clock starts when the request header
// is read, so a job that legitimately used its full budget would otherwise
// compute a result the connection can no longer write. Extension is best
// effort — test recorders don't support deadlines.
func (s *server) respond(w http.ResponseWriter, status int, v any) {
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(responseWriteBudget))
	writeJSON(w, status, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// verifyExtension checks that every edge the server colored (partial[e] < 0)
// received a color from its list. Membership is a linear scan: the library
// only validates the PRUNED lists as sorted, so the client's original list
// may be unsorted yet still yield a valid (sorted-after-pruning) instance.
func verifyExtension(partial []int, lists [][]int, colors []int) error {
	for e, fixed := range partial {
		if fixed >= 0 {
			continue
		}
		found := false
		for _, c := range lists[e] {
			if c == colors[e] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("edge %d colored %d outside its list", e, colors[e])
		}
	}
	return nil
}

func buildGraph(spec graphSpec) (*distec.Graph, error) {
	if spec.N < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", spec.N)
	}
	if spec.N > maxGraphNodes {
		return nil, fmt.Errorf("graph: node count %d exceeds the daemon's limit of %d", spec.N, maxGraphNodes)
	}
	g := distec.NewGraph(spec.N)
	for i, e := range spec.Edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graph edge %d: %w", i, err)
		}
	}
	return g, nil
}

// --- drive mode ---

// driveClass is one request class of the drive mix.
type driveClass struct {
	name   string
	weight int
	body   []byte
}

// parseMix parses "small=6,medium=3,large=1" into request classes with
// pre-encoded bodies. Classes with weight 0 are dropped; unknown class
// names are an error.
func parseMix(mix string) ([]driveClass, error) {
	graphs := map[string]graphSpec{
		"small":  graphToSpec(distec.RandomRegular(100, 6, 11)),  // 300 edges
		"medium": graphToSpec(distec.RandomRegular(1000, 8, 12)), // 4000 edges
		"large":  graphToSpec(distec.Cycle(20000)),               // 20k edges
	}
	algs := map[string]string{"small": "bko", "medium": "pr01", "large": "randomized"}
	var classes []driveClass
	for _, part := range strings.Split(mix, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		weight, err := strconv.Atoi(val)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		spec, ok := graphs[name]
		if !ok {
			return nil, fmt.Errorf("unknown mix class %q (have small, medium, large)", name)
		}
		if weight == 0 {
			continue
		}
		body, err := json.Marshal(colorRequest{Graph: spec, Algorithm: algs[name], Seed: 1})
		if err != nil {
			return nil, err
		}
		classes = append(classes, driveClass{name: name, weight: weight, body: body})
	}
	if len(classes) == 0 {
		return nil, errors.New("empty mix")
	}
	return classes, nil
}

func graphToSpec(g *distec.Graph) graphSpec {
	spec := graphSpec{N: g.N(), Edges: make([][2]int, 0, g.M())}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(distec.EdgeID(e))
		spec.Edges = append(spec.Edges, [2]int{u, v})
	}
	return spec
}

// driveSummary is what a drive run reports.
type driveSummary struct {
	Requests int
	Errors   int
	Wall     time.Duration
	P50, P99 time.Duration
}

// driveLoad replays the weighted mix against base at the given rate for the
// given duration and prints a summary plus the daemon's own stats.
func driveLoad(base string, rate float64, duration time.Duration, classes []driveClass, out io.Writer) (driveSummary, error) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) || rate > 1e6 {
		return driveSummary{}, fmt.Errorf("rate must be in (0, 1e6], got %v", rate)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return driveSummary{}, fmt.Errorf("daemon not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errCount  int
		wg        sync.WaitGroup
	)
	// Weighted round-robin over an expanded schedule keeps the mix exact.
	var schedule []int
	for ci, c := range classes {
		for i := 0; i < c.weight; i++ {
			schedule = append(schedule, ci)
		}
	}
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(duration)
	start := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		<-ticker.C
		c := classes[schedule[i%len(schedule)]]
		wg.Add(1)
		go func(c driveClass) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(base+"/v1/color", "application/json", bytes.NewReader(c.body))
			lat := time.Since(t0)
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			mu.Lock()
			if ok {
				latencies = append(latencies, lat)
			} else {
				errCount++
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	sum := driveSummary{Requests: len(latencies) + errCount, Errors: errCount, Wall: time.Since(start)}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		sum.P50 = latencies[len(latencies)/2]
		sum.P99 = latencies[len(latencies)*99/100]
	}
	fmt.Fprintf(out, "drive: %d requests in %v (%.1f req/s), %d errors, latency p50=%v p99=%v\n",
		sum.Requests, sum.Wall.Round(time.Millisecond),
		float64(sum.Requests)/sum.Wall.Seconds(), sum.Errors, sum.P50, sum.P99)
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		defer resp.Body.Close()
		var stats json.RawMessage
		if json.NewDecoder(resp.Body).Decode(&stats) == nil {
			fmt.Fprintf(out, "daemon stats: %s\n", stats)
		}
	}
	return sum, nil
}
