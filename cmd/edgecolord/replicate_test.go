package main

import (
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/distec/distec"
)

// replStatus fetches and decodes GET /v1/replication/status.
func replStatus(t *testing.T, baseURL string) replicationStatus {
	t.Helper()
	r, err := http.Get(baseURL + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("replication status: %d: %s", r.StatusCode, body)
	}
	var st replicationStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitCaughtUp polls the follower's status until every (id, seq) watermark
// is locally durable there.
func waitCaughtUp(t *testing.T, followerURL string, want map[string]uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := replStatus(t, followerURL)
		ok := st.Role == "follower"
		for id, seq := range want {
			if st.Sessions[id] < seq {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up to %v: status %+v", want, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicationFollowerMirrorsAndPromotes runs a leader and a warm
// standby in-process: the standby must mirror every acknowledged batch
// (through compactions and session deletes), refuse session traffic while
// following, and serve every session — verified, exact edge sets — after
// an explicit promote.
func TestReplicationFollowerMirrorsAndPromotes(t *testing.T) {
	leaderTS, _, _ := newTestServerCfg(t, daemonConfig{dataDir: t.TempDir(), compactBytes: 1024})
	followerTS, fd, _ := newTestServerCfg(t, daemonConfig{
		dataDir: t.TempDir(), follow: leaderTS.URL, followPoll: 25 * time.Millisecond,
	})

	// Three sessions, churned enough that the 1 KiB compaction threshold
	// trips: the follower has to survive snapshot resyncs mid-stream.
	mirrors := make([]*sessionMirror, 3)
	for i := range mirrors {
		mirrors[i] = createMirroredSession(t, leaderTS.URL, distec.RandomRegular(24, 4, uint64(50+i)), sessionRequest{})
		mirrors[i].churn(t, leaderTS.URL, 8, 4, uint64(60+i))
	}
	want := make(map[string]uint64, len(mirrors))
	for _, m := range mirrors {
		want[m.id] = 8
	}
	waitCaughtUp(t, followerTS.URL, want)

	// A follower is not a server: session traffic answers 503 until
	// promotion.
	resp, body := postJSON(t, followerTS.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(4))})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create on follower: status %d, want 503: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, followerTS.URL+"/v1/session/"+mirrors[0].id+"/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 2}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update on follower: status %d, want 503: %s", resp.StatusCode, body)
	}

	// A session deleted on the leader disappears from the standby too.
	req, _ := http.NewRequest(http.MethodDelete, leaderTS.URL+"/v1/session/"+mirrors[2].id, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("leader delete: %d", r.StatusCode)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, tracked := replStatus(t, followerTS.URL).Sessions[mirrors[2].id]; !tracked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deleted session never pruned from the follower")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Promote: the response returns only once the standby leads, and the
	// replicated sessions serve with verified colorings and the exact
	// acknowledged edge sets.
	r, err = http.Post(followerTS.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.Contains(string(body), "leader") {
		t.Fatalf("promote: %d: %s", r.StatusCode, body)
	}
	if fd.following.Load() {
		t.Fatal("daemon still marked following after promote")
	}
	for _, m := range mirrors[:2] {
		m.checkRecovered(t, followerTS.URL, 8)
	}
	// The deleted session stayed deleted.
	r, err = http.Get(followerTS.URL + "/v1/session/" + mirrors[2].id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session served after promote: %d", r.StatusCode)
	}
	// Promoted daemon accepts new traffic.
	resp, body = postJSON(t, followerTS.URL+"/v1/session/"+mirrors[0].id+"/update", updateRequest{
		Updates: mirrors[0].makeBatch(2, rand.New(rand.NewSource(77))),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update after promote: status %d: %s", resp.StatusCode, body)
	}
}

// TestReplicationAutoPromote runs the failover trigger in-process: the
// leader goes away, the standby's list syncs start failing, and once the
// unreachable streak crosses -promote-after it promotes itself and serves
// the replicated sessions.
func TestReplicationAutoPromote(t *testing.T) {
	leaderTS, _, _ := newTestServerCfg(t, daemonConfig{dataDir: t.TempDir()})
	followerTS, fd, _ := newTestServerCfg(t, daemonConfig{
		dataDir: t.TempDir(), follow: leaderTS.URL,
		followPoll: 20 * time.Millisecond, promoteAfter: 100 * time.Millisecond,
	})

	m := createMirroredSession(t, leaderTS.URL, distec.RandomRegular(16, 4, 5), sessionRequest{})
	m.churn(t, leaderTS.URL, 3, 4, 21)
	waitCaughtUp(t, followerTS.URL, map[string]uint64{m.id: 3})

	// Kill the leader's listener: every subsequent list sync fails, and the
	// standby must promote on its own within the threshold.
	leaderTS.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if replStatus(t, followerTS.URL).Role == "leader" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never auto-promoted after leader death")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if fd.following.Load() {
		t.Fatal("daemon still marked following after auto-promote")
	}
	m.checkRecovered(t, followerTS.URL, 3)
}

// TestFollowerShutdownKeepsReplicatedFiles pins the non-promoting exit: a
// standby shut down mid-follow stops cleanly (in-flight long polls are
// cancelled, not waited out) and leaves the replicated files on disk for
// its next boot.
func TestFollowerShutdownKeepsReplicatedFiles(t *testing.T) {
	leaderTS, _, _ := newTestServerCfg(t, daemonConfig{dataDir: t.TempDir()})
	followerDir := t.TempDir()
	followerTS, fd, _ := newTestServerCfg(t, daemonConfig{
		dataDir: followerDir, follow: leaderTS.URL, followPoll: 20 * time.Millisecond,
	})

	m := createMirroredSession(t, leaderTS.URL, distec.Cycle(8), sessionRequest{})
	m.churn(t, leaderTS.URL, 2, 2, 9)
	waitCaughtUp(t, followerTS.URL, map[string]uint64{m.id: 2})

	start := time.Now()
	fd.close() // idempotent: the test cleanup calls it again
	if d := time.Since(start); d > replLongPoll {
		t.Fatalf("follower shutdown took %v: waited out a leader long poll", d)
	}
	if _, err := os.Stat(filepath.Join(followerDir, m.id, "snapshot")); err != nil {
		t.Fatalf("replicated snapshot gone after non-promoting shutdown: %v", err)
	}
}

// TestReplicateEndpointValidation pins the leader-side contract of the
// replication endpoints: traversal-shaped or malformed ids are rejected
// before touching the filesystem, unknown sessions 404, a bad ?from is a
// client error, and POST /v1/promote on a daemon that already leads is an
// idempotent no-op.
func TestReplicateEndpointValidation(t *testing.T) {
	ts, _, _ := newTestServerCfg(t, daemonConfig{dataDir: t.TempDir()})
	get := func(path string) int {
		t.Helper()
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		return r.StatusCode
	}
	if code := get("/v1/replicate/a.b"); code != http.StatusBadRequest {
		t.Fatalf("dotted id: %d, want 400", code)
	}
	if code := get("/v1/replicate/" + strings.Repeat("a", 65)); code != http.StatusBadRequest {
		t.Fatalf("oversized id: %d, want 400", code)
	}
	if code := get("/v1/replicate/deadbeefdeadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", code)
	}
	if code := get("/v1/replicate/deadbeefdeadbeef?from=xyz"); code != http.StatusBadRequest {
		t.Fatalf("bad from: %d, want 400", code)
	}

	r, err := http.Post(ts.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.Contains(string(body), "leader") {
		t.Fatalf("promote on a leader: %d: %s", r.StatusCode, body)
	}
	if st := replStatus(t, ts.URL); st.Role != "leader" || !st.LeaderHealthy {
		t.Fatalf("leader status: %+v", st)
	}
}

// TestFollowerDefaultsAndLagGauge pins two small follower contracts: an
// unset -follow-poll falls back to the 500 ms default, and the
// replication-lag gauge reads as a real value while following, then
// pins to 0 once the daemon leads.
func TestFollowerDefaultsAndLagGauge(t *testing.T) {
	leaderTS, _, _ := newTestServerCfg(t, daemonConfig{dataDir: t.TempDir()})
	followerTS, fd, _ := newTestServerCfg(t, daemonConfig{
		dataDir: t.TempDir(), follow: leaderTS.URL, // followPoll left zero
	})
	if fd.repl.poll != 500*time.Millisecond {
		t.Fatalf("default follow poll = %v, want 500ms", fd.repl.poll)
	}
	scrape := func() string {
		t.Helper()
		r, err := http.Get(followerTS.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return string(body)
	}
	if !strings.Contains(scrape(), "distec_replication_lag_seconds") {
		t.Fatal("lag gauge missing from a following daemon's /metrics")
	}
	r, err := http.Post(followerTS.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d", r.StatusCode)
	}
	if !strings.Contains(scrape(), "distec_replication_lag_seconds 0") {
		t.Fatal("lag gauge not pinned to 0 after promotion")
	}
}

// TestFollowRequiresDataDir pins the config invariant: a standby has
// nowhere to put the replicated state without -data-dir.
func TestFollowRequiresDataDir(t *testing.T) {
	pool := distec.NewPool(distec.PoolOptions{Workers: 1})
	defer pool.Close()
	if _, err := newDaemon(pool, daemonConfig{follow: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("newDaemon accepted -follow without -data-dir")
	}
}

// TestFailoverKill is the end-to-end failover harness: a real leader
// process and a real warm-standby process, a churn stream, the leader
// SIGKILLed mid-churn, and the standby auto-promoting on the dead leader
// — after which every batch that was acknowledged and replicated must
// serve from the standby, verified, with the exact edge set.
func TestFailoverKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemon processes")
	}
	bin := filepath.Join(t.TempDir(), "edgecolord")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	waitHealthy := func(base string) {
		for i := 0; ; i++ {
			r, err := http.Get(base + "/healthz")
			if err == nil {
				r.Body.Close()
				return
			}
			if i > 100 {
				t.Fatalf("daemon at %s never became healthy: %v", base, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	leaderAddr, followerAddr := freePort(), freePort()
	leaderURL, followerURL := "http://"+leaderAddr, "http://"+followerAddr
	leader := start("-addr", leaderAddr, "-data-dir", t.TempDir(), "-fsync", "none",
		"-wal-compact-bytes", "2048", "-workers", "1")
	defer leader.Process.Kill()
	waitHealthy(leaderURL)
	follower := start("-addr", followerAddr, "-data-dir", t.TempDir(), "-fsync", "none",
		"-workers", "1", "-follow", leaderURL,
		"-follow-poll", "50ms", "-promote-after", "750ms")
	defer func() {
		follower.Process.Signal(syscall.SIGTERM)
		follower.Wait()
	}()
	waitHealthy(followerURL)

	// Phase 1: acknowledged churn, then wait until the standby holds every
	// acknowledged batch. From here on those batches must never be lost.
	g := distec.RandomRegular(48, 6, 11)
	m := createMirroredSession(t, leaderURL, g, sessionRequest{})
	const ackedBatches = 12
	m.churn(t, leaderURL, ackedBatches, 4, 33)
	waitCaughtUp(t, followerURL, map[string]uint64{m.id: ackedBatches})

	// Phase 2: keep churning (these batches race the kill — they may or
	// may not replicate, and the mirror covers both outcomes) and SIGKILL
	// the leader mid-stream.
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(34))
		for i := 0; i < 200; i++ {
			batch := m.makeBatch(4, rng)
			m.apply(batch)
			data, _ := json.Marshal(updateRequest{Updates: batch})
			resp, err := http.Post(leaderURL+"/v1/session/"+m.id+"/update", "application/json", strings.NewReader(string(data)))
			if err != nil {
				return // the kill landed
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
		}
	}()
	time.Sleep(time.Duration(50+rand.Intn(200)) * time.Millisecond)
	leader.Process.Signal(syscall.SIGKILL)
	<-done
	leader.Wait()

	// Phase 3: the standby notices the dead leader and promotes itself.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := replStatus(t, followerURL)
		if st.Role == "leader" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never promoted: %+v", st)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Every batch acknowledged and replicated before the kill survives;
	// the recovered seq may sit past ackedBatches if phase-2 batches made
	// it across, and the mirror knows the exact edge set either way.
	m.checkRecovered(t, followerURL, ackedBatches)

	// The promoted daemon is a real leader: it accepts and serves new
	// batches on the failed-over session.
	batch := m.makeBatch(3, rand.New(rand.NewSource(35)))
	m.apply(batch)
	data, _ := json.Marshal(updateRequest{Updates: batch})
	resp, err := http.Post(followerURL+"/v1/session/"+m.id+"/update", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failover update: status %d: %s", resp.StatusCode, body)
	}
	var ur updateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if !ur.Verified {
		t.Fatal("post-failover batch not verified")
	}
}
