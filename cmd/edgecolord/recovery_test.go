package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/bench"
	"github.com/distec/distec/internal/persist"
	"github.com/distec/distec/internal/persist/errfs"
)

// sessionMirror tracks, client-side, exactly what a session's active edge
// set must be after each acknowledged batch — the ground truth the
// crash-recovery tests compare recovered daemons against. It reproduces the
// daemon's EdgeID assignment (initial edges in posted order, fresh inserts
// appended, revived tombstones keeping their IDs).
type sessionMirror struct {
	id     string
	g      *distec.Graph
	ids    map[[2]int]int
	active map[int]bool
	// perBatch[k] is the active EdgeID set after batch k+1 (seq k+1).
	perBatch []map[int]bool
	batches  [][]distec.Update
}

func newSessionMirror(id string, g *distec.Graph) *sessionMirror {
	m := &sessionMirror{id: id, g: g, ids: make(map[[2]int]int), active: make(map[int]bool)}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(distec.EdgeID(e))
		m.ids[[2]int{u, v}] = e
		m.active[e] = true
	}
	return m
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// apply records one batch as applied and snapshots the resulting set.
func (m *sessionMirror) apply(batch []distec.Update) {
	for _, up := range batch {
		key := edgeKey(up.U, up.V)
		id, ok := m.ids[key]
		if !ok {
			id = len(m.ids)
			m.ids[key] = id
		}
		m.active[id] = up.Op == distec.InsertEdge
	}
	snap := make(map[int]bool, len(m.active))
	for id, a := range m.active {
		if a {
			snap[id] = true
		}
	}
	m.perBatch = append(m.perBatch, snap)
	m.batches = append(m.batches, batch)
}

// expectAt returns the active set after the first seq batches.
func (m *sessionMirror) expectAt(t *testing.T, seq uint64) map[int]bool {
	t.Helper()
	if seq == 0 {
		snap := make(map[int]bool)
		for e := 0; e < m.g.M(); e++ {
			snap[e] = true
		}
		return snap
	}
	if int(seq) > len(m.perBatch) {
		t.Fatalf("recovered seq %d beyond the %d sent batches", seq, len(m.perBatch))
	}
	return m.perBatch[seq-1]
}

// checkRecovered asserts a recovered session matches the mirror at the seq
// the daemon reports: verified, and the exact pre-crash active edge set.
func (m *sessionMirror) checkRecovered(t *testing.T, baseURL string, minSeq uint64) {
	t.Helper()
	r, err := http.Get(baseURL + "/v1/session/" + m.id)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("recovered session %s: status %d: %s", m.id, r.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Verified {
		t.Fatalf("recovered session %s not verified", m.id)
	}
	if sr.Seq < minSeq {
		t.Fatalf("recovered session %s at seq %d, want at least %d", m.id, sr.Seq, minSeq)
	}
	want := m.expectAt(t, sr.Seq)
	for e, col := range sr.Colors {
		if (col >= 0) != want[e] {
			t.Fatalf("recovered session %s (seq %d): edge %d active=%v, want %v",
				m.id, sr.Seq, e, col >= 0, want[e])
		}
	}
	if len(sr.Colors) < len(want) {
		t.Fatalf("recovered session %s: %d edges, want at least %d", m.id, len(sr.Colors), len(want))
	}
}

// startDiskDaemon builds an in-process daemon over dataDir whose lifetime
// the test controls: crash() abandons it without any graceful close (files
// are left exactly as the journal wrote them), like a killed process.
func startDiskDaemon(t *testing.T, dataDir string) (ts *httptest.Server, d *server, crash func()) {
	t.Helper()
	pool := distec.NewPool(distec.PoolOptions{Workers: 1})
	d, err := newDaemon(pool, daemonConfig{dataDir: dataDir, compactBytes: 2048})
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	ts = httptest.NewServer(d.mux)
	return ts, d, func() {
		ts.Close()
		pool.Close()
		// Closing is crash-equivalent for the on-disk bytes: appends and
		// snapshots are write-through (no userspace buffering), so closing
		// flushes nothing a kill would have lost. It only quiesces any
		// background compaction goroutine, which in-process would otherwise
		// race the next daemon generation — a real kill stops it too.
		// Interrupted-compaction states are covered by the persist crash-
		// point tests and TestCrashRecoveryKill.
		d.close()
	}
}

// createMirroredSession creates a session over g and returns its mirror.
func createMirroredSession(t *testing.T, baseURL string, g *distec.Graph, req sessionRequest) *sessionMirror {
	t.Helper()
	req.Graph = graphToSpec(g)
	resp, body := postJSON(t, baseURL+"/v1/session", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return newSessionMirror(sr.SessionID, g)
}

// makeBatch derives one self-consistent update batch from the mirror's
// current live set (so churn can resume against a recovered session whose
// state long diverged from the initial graph).
func (m *sessionMirror) makeBatch(size int, rng *rand.Rand) []distec.Update {
	live := make(map[[2]int]bool)
	for key, id := range m.ids {
		if m.active[id] {
			live[key] = true
		}
	}
	n := m.g.N()
	batch := make([]distec.Update, 0, size)
	for len(batch) < size {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		key := edgeKey(u, v)
		if live[key] {
			batch = append(batch, distec.Update{Op: distec.DeleteEdge, U: key[0], V: key[1]})
			live[key] = false
		} else {
			batch = append(batch, distec.Update{Op: distec.InsertEdge, U: key[0], V: key[1]})
			live[key] = true
		}
	}
	return batch
}

// churn drives count batches of batchSize updates against the session,
// recording each acknowledged batch in the mirror.
func (m *sessionMirror) churn(t *testing.T, baseURL string, count, batchSize int, seed uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	for b := 0; b < count; b++ {
		batch := m.makeBatch(batchSize, rng)
		resp, body := postJSON(t, baseURL+"/v1/session/"+m.id+"/update", updateRequest{Updates: batch})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", b, resp.StatusCode, body)
		}
		m.apply(batch)
	}
}

// TestRecoveryRoundTrip is the kill-restart acceptance path: sessions
// across the palette regimes, churned through enough batches to force
// background compactions, the daemon abandoned without any graceful
// shutdown, and a fresh daemon on the same data dir must recover every
// session under its original ID with a Verify-clean coloring and the exact
// pre-crash active edge set.
func TestRecoveryRoundTrip(t *testing.T) {
	dataDir := t.TempDir()
	ts, _, crash := startDiskDaemon(t, dataDir)

	mirrors := []*sessionMirror{
		createMirroredSession(t, ts.URL, distec.RandomRegular(24, 4, 3), sessionRequest{}),
		createMirroredSession(t, ts.URL, distec.RandomRegular(20, 4, 5), sessionRequest{Algorithm: "vizing"}),
		createMirroredSession(t, ts.URL, distec.Cycle(16), sessionRequest{Algorithm: "pr01"}),
	}
	for i, m := range mirrors {
		m.churn(t, ts.URL, 40, 5, uint64(11+i))
	}
	crash()

	ts2, d2, crash2 := startDiskDaemon(t, dataDir)
	defer crash2()
	if d2.recovered != len(mirrors) || d2.recoveryFailures != 0 {
		t.Fatalf("recovered %d sessions (%d failures), want %d", d2.recovered, d2.recoveryFailures, len(mirrors))
	}
	for _, m := range mirrors {
		m.checkRecovered(t, ts2.URL, 40)
	}
	// The recovered sessions accept updates and keep journaling: a third
	// daemon generation must see the post-recovery batches too.
	mirrors[0].churn(t, ts2.URL, 5, 3, 99)
	crash2()
	ts3, _, crash3 := startDiskDaemon(t, dataDir)
	defer crash3()
	mirrors[0].checkRecovered(t, ts3.URL, 45)
}

// TestRecoveryTornWALTail cuts the journal mid-record — the footprint of a
// crash mid-append — and requires recovery to discard exactly the torn
// record: the session comes back at the previous batch boundary, never
// half-applied.
func TestRecoveryTornWALTail(t *testing.T) {
	for _, cut := range []int64{1, 2, 7} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			dataDir := t.TempDir()
			ts, _, crash := startDiskDaemon(t, dataDir)
			m := createMirroredSession(t, ts.URL, distec.RandomRegular(24, 4, 3), sessionRequest{})
			m.churn(t, ts.URL, 8, 4, 17)
			crash()

			walPath := filepath.Join(dataDir, m.id, persist.WALFile)
			if err := errfs.Truncate(walPath, cut); err != nil {
				t.Fatal(err)
			}
			ts2, d2, crash2 := startDiskDaemon(t, dataDir)
			defer crash2()
			if d2.recovered != 1 {
				t.Fatalf("recovered %d sessions, want 1", d2.recovered)
			}
			r, err := http.Get(ts2.URL + "/v1/session/" + m.id)
			if err != nil {
				t.Fatal(err)
			}
			var sr sessionResponse
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Seq != 7 {
				t.Fatalf("recovered seq %d after torn tail, want 7 (one discarded record)", sr.Seq)
			}
			m.checkRecovered(t, ts2.URL, 7)
		})
	}
}

// TestRecoveryCorruptionTable drives recovery through deliberately damaged
// session directories: corrupt snapshots fail that one session loudly
// (never served wrong, daemon still boots), corrupt WAL interiors recover
// the clean prefix, and missing WALs fall back to the snapshot alone.
func TestRecoveryCorruptionTable(t *testing.T) {
	setup := func(t *testing.T) (string, *sessionMirror) {
		dataDir := t.TempDir()
		ts, _, crash := startDiskDaemon(t, dataDir)
		m := createMirroredSession(t, ts.URL, distec.RandomRegular(24, 4, 3), sessionRequest{})
		m.churn(t, ts.URL, 6, 4, 23)
		crash()
		return dataDir, m
	}
	t.Run("snapshot-bit-flip-skips-session", func(t *testing.T) {
		dataDir, m := setup(t)
		if err := errfs.FlipByte(filepath.Join(dataDir, m.id, persist.SnapshotFile), 40, 0x20); err != nil {
			t.Fatal(err)
		}
		ts2, d2, crash2 := startDiskDaemon(t, dataDir)
		defer crash2()
		if d2.recovered != 0 || d2.recoveryFailures != 1 {
			t.Fatalf("recovered=%d failures=%d, want 0/1", d2.recovered, d2.recoveryFailures)
		}
		r, err := http.Get(ts2.URL + "/v1/session/" + m.id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("corrupt session served: status %d", r.StatusCode)
		}
		// The daemon still serves: health and fresh sessions work.
		r, err = http.Get(ts2.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("daemon unhealthy after skipping a corrupt session: %d", r.StatusCode)
		}
	})
	t.Run("wal-interior-bit-flip-recovers-prefix", func(t *testing.T) {
		dataDir, m := setup(t)
		walPath := filepath.Join(dataDir, m.id, persist.WALFile)
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte roughly halfway in: records from there on are
		// discarded, the prefix must survive exactly.
		if err := errfs.FlipByte(walPath, fi.Size()/2, 0x20); err != nil {
			t.Fatal(err)
		}
		ts2, d2, crash2 := startDiskDaemon(t, dataDir)
		defer crash2()
		if d2.recovered != 1 {
			t.Fatalf("recovered %d sessions, want 1", d2.recovered)
		}
		m.checkRecovered(t, ts2.URL, 0)
	})
	t.Run("missing-wal-recovers-snapshot", func(t *testing.T) {
		dataDir, m := setup(t)
		if err := os.Remove(filepath.Join(dataDir, m.id, persist.WALFile)); err != nil {
			t.Fatal(err)
		}
		ts2, d2, crash2 := startDiskDaemon(t, dataDir)
		defer crash2()
		if d2.recovered != 1 {
			t.Fatalf("recovered %d sessions, want 1", d2.recovered)
		}
		// With compaction at 2048 bytes the snapshot holds some batch
		// prefix; whatever seq it covers must be exactly reproduced.
		m.checkRecovered(t, ts2.URL, 0)
	})
	t.Run("empty-session-dir-skipped", func(t *testing.T) {
		dataDir, m := setup(t)
		if err := os.MkdirAll(filepath.Join(dataDir, "halfborn"), 0o755); err != nil {
			t.Fatal(err)
		}
		ts2, d2, crash2 := startDiskDaemon(t, dataDir)
		defer crash2()
		if d2.recovered != 1 || d2.recoveryFailures != 1 {
			t.Fatalf("recovered=%d failures=%d, want 1/1", d2.recovered, d2.recoveryFailures)
		}
		m.checkRecovered(t, ts2.URL, 6)
	})
}

// TestCrashRecoveryKill is the full-fidelity harness: a real daemon
// process, a live churn stream, SIGKILL at a random moment (possibly mid
// write, mid compaction), restart, and the recovered session must verify
// with the exact active edge set of some acknowledged batch boundary at or
// past the last acknowledged batch.
func TestCrashRecoveryKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon process")
	}
	bin := filepath.Join(t.TempDir(), "edgecolord")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	start := func(addr string) *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr, "-data-dir", dataDir, "-fsync", "none",
			"-wal-compact-bytes", "2048", "-workers", "1")
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		base := "http://" + addr
		for i := 0; ; i++ {
			r, err := http.Get(base + "/healthz")
			if err == nil {
				r.Body.Close()
				break
			}
			if i > 100 {
				t.Fatalf("daemon at %s never became healthy: %v", addr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		return cmd
	}

	addr := freePort()
	cmd := start(addr)
	defer cmd.Process.Kill()
	base := "http://" + addr

	g := distec.RandomRegular(64, 6, 9)
	m := createMirroredSession(t, base, g, sessionRequest{})
	ops := bench.ChurnCapped(g, 4000, 0, 31)

	// Drive batches until the kill lands; count only acknowledged ones.
	acked := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := 0; (b+1)*4 <= len(ops); b++ {
			batch := make([]distec.Update, 4)
			for i := range batch {
				op := ops[b*4+i]
				batch[i] = distec.Update{Op: distec.InsertEdge, U: op.U, V: op.V}
				if op.Delete {
					batch[i].Op = distec.DeleteEdge
				}
			}
			m.apply(batch) // sent: the mirror covers every possibly-durable batch
			data, _ := json.Marshal(updateRequest{Updates: batch})
			resp, err := http.Post(base+"/v1/session/"+m.id+"/update", "application/json", strings.NewReader(string(data)))
			if err != nil {
				return // the kill landed mid-request
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			acked++
		}
	}()
	time.Sleep(time.Duration(100+rand.Intn(400)) * time.Millisecond)
	cmd.Process.Signal(syscall.SIGKILL)
	<-done
	cmd.Wait()
	if acked == 0 {
		t.Skip("kill landed before any batch was acknowledged; nothing to verify")
	}

	addr2 := freePort()
	cmd2 := start(addr2)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	// Every acknowledged batch must have survived (its journal append
	// returned before the 200 did); an unacknowledged final batch may or
	// may not have landed — both are legal batch boundaries.
	m.checkRecovered(t, "http://"+addr2, uint64(acked))
}

// TestJournalFailureRetiresSession pins the divergence guard: once a
// session's journal fails, its memory state is ahead of its durable state,
// and any further acknowledged batch would journal with a sequence gap that
// makes the whole log unrecoverable. The daemon must retire the session
// (500 + unregister, files kept) instead of serving it on.
func TestJournalFailureRetiresSession(t *testing.T) {
	dataDir := t.TempDir()
	ts, d, crash := startDiskDaemon(t, dataDir)
	defer crash()
	m := createMirroredSession(t, ts.URL, distec.RandomRegular(24, 4, 3), sessionRequest{})
	m.churn(t, ts.URL, 3, 2, 41)

	// Break the journal out from under the session: the next append fails.
	sess, ok := d.session(m.id)
	if !ok {
		t.Fatal("session not registered")
	}
	sess.log.Close()

	batch := m.makeBatch(2, rand.New(rand.NewSource(43)))
	resp, body := postJSON(t, ts.URL+"/v1/session/"+m.id+"/update", updateRequest{Updates: batch})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("update with a broken journal: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "session retired") {
		t.Fatalf("error body: %s", body)
	}
	// The session is gone from the registry...
	resp, _ = postJSON(t, ts.URL+"/v1/session/"+m.id+"/update", updateRequest{Updates: batch})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("retired session still served: status %d", resp.StatusCode)
	}
	// ...but its durable state survives: a restart recovers every batch
	// that was journaled before the failure (the unjournaled one was 500ed,
	// never acknowledged).
	crash()
	ts2, d2, crash2 := startDiskDaemon(t, dataDir)
	defer crash2()
	if d2.recovered != 1 {
		t.Fatalf("recovered %d sessions, want 1", d2.recovered)
	}
	m.checkRecovered(t, ts2.URL, 3)
}

// TestSweepSkipsBusySessions: a batch outliving the TTL is busy, not
// abandoned — the sweeper must not evict (and delete!) the session under
// it.
func TestSweepSkipsBusySessions(t *testing.T) {
	ts, d, _ := newTestServerCfg(t, daemonConfig{sessionTTL: time.Hour})
	m := createMirroredSession(t, ts.URL, distec.Cycle(8), sessionRequest{})
	sess, ok := d.session(m.id)
	if !ok {
		t.Fatal("session not registered")
	}
	sess.last.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	sess.inflight.Add(1) // a long batch is executing
	if n := d.sweepIdle(); n != 0 {
		t.Fatalf("swept %d busy sessions", n)
	}
	sess.inflight.Add(-1)
	if n := d.sweepIdle(); n != 1 {
		t.Fatalf("idle session not swept (%d)", n)
	}
}
