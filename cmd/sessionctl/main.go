// Command sessionctl inspects, verifies, and compacts the on-disk state of
// persisted dynamic sessions (the snapshot + WAL directories an edgecolord
// -data-dir maintains), offline — point it at a stopped daemon's data
// directory or at one session directory.
//
// Usage:
//
//	sessionctl [-fsync always|none] inspect <dir>
//	sessionctl [-fsync always|none] verify  <dir>
//	sessionctl [-fsync always|none] compact <dir>
//
// inspect prints each session's header, sequence state, and WAL summary
// (read-only). verify fully recovers each session in memory (WAL replayed
// over the snapshot) and checks the resulting coloring independently
// (read-only). compact recovers each session, writes a fresh snapshot at
// the head sequence number, and retires the WAL; -fsync controls whether
// the rewrite is flushed to the device (always, the default) or left to
// the kernel (none — faster, survives process crashes only).
//
// <dir> is either one session directory (it contains a "snapshot" file) or
// a data directory whose subdirectories are sessions. verify and compact
// exit 1 if any session fails; a torn WAL tail is not a failure (recovery
// discards it by design) but is reported. Usage errors — unknown
// subcommands, unknown -fsync modes, a missing directory operand — exit 2.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/persist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sessionctl:", err)
		if isUsageError(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks a malformed invocation, so main can exit 2 (as flag
// parsing failures conventionally do) instead of 1 (operation failed).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func isUsageError(err error) bool {
	_, ok := err.(usageError)
	return ok
}

const usage = "usage: sessionctl [-fsync always|none] inspect|verify|compact <session-dir|data-dir>"

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sessionctl", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fsyncMode := fs.String("fsync", "always", "durability of compact's rewrite: always or none")
	fs.Usage = func() {}
	if err := fs.Parse(args); err != nil {
		return usageError{msg: fmt.Sprintf("%v\n%s", err, usage)}
	}
	if *fsyncMode != "always" && *fsyncMode != "none" {
		return usageError{msg: fmt.Sprintf("unknown -fsync mode %q (want always or none)", *fsyncMode)}
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return usageError{msg: usage}
	}
	cmd, root := rest[0], rest[1]
	var fn func(dir string, out io.Writer) error
	switch cmd {
	case "inspect":
		fn = inspectSession
	case "verify":
		fn = verifySession
	case "compact":
		opts := persist.Options{Fsync: *fsyncMode == "always"}
		fn = func(dir string, out io.Writer) error { return compactSession(dir, opts, out) }
	default:
		return usageError{msg: fmt.Sprintf("unknown command %q (want inspect, verify, or compact)", cmd)}
	}
	dirs, err := sessionDirs(root)
	if err != nil {
		return err
	}
	failures := 0
	for _, dir := range dirs {
		if err := fn(dir, out); err != nil {
			fmt.Fprintf(out, "%s: FAILED: %v\n", dir, err)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d sessions failed", failures, len(dirs))
	}
	return nil
}

// sessionDirs resolves root to the session directories it holds: itself if
// it contains a snapshot, otherwise every child directory that does.
func sessionDirs(root string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(root, persist.SnapshotFile)); err == nil {
		return []string{root}, nil
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, persist.SnapshotFile)); err == nil {
			dirs = append(dirs, dir)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("%s holds no session (no %s file at or below it)", root, persist.SnapshotFile)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func inspectSession(dir string, out io.Writer) error {
	snap, replay, info, err := persist.ScanDir(dir)
	if err != nil {
		return err
	}
	live := 0
	for _, a := range snap.Active {
		if a {
			live++
		}
	}
	alg := snap.Algorithm
	if alg == "" {
		alg = "bko (default)"
	}
	head := snap.Seq
	if n := len(replay); n > 0 {
		head = replay[n-1].Seq
	}
	updates := 0
	for _, rec := range replay {
		updates += len(rec.Updates)
	}
	fmt.Fprintf(out, "%s:\n", dir)
	fmt.Fprintf(out, "  algorithm %s, seed %d, palette %d configured / %d live\n",
		alg, snap.Seed, snap.ConfigPalette, snap.LivePalette)
	fmt.Fprintf(out, "  graph: n=%d m=%d (%d active, %d tombstoned)\n",
		snap.N, len(snap.EdgeU), live, len(snap.EdgeU)-live)
	fmt.Fprintf(out, "  snapshot at seq %d; WAL %d bytes, %d records (%d updates) to seq %d\n",
		snap.Seq, info.WALBytes, len(replay), updates, head)
	if info.Stale > 0 {
		fmt.Fprintf(out, "  %d stale records already covered by the snapshot (compaction leftovers)\n", info.Stale)
	}
	if info.PrevBytes > 0 {
		fmt.Fprintf(out, "  interrupted compaction: wal.prev of %d bytes pending merge\n", info.PrevBytes)
	}
	if info.TornTail {
		fmt.Fprintf(out, "  torn final record discarded (crash mid-append)\n")
	}
	return nil
}

// restoreSession recovers one session fully in memory: snapshot restored,
// surviving WAL records replayed in order on the sequential engine.
func restoreSession(dir string, records []persist.Record) (*distec.Dynamic, error) {
	f, err := os.Open(filepath.Join(dir, persist.SnapshotFile))
	if err != nil {
		return nil, err
	}
	d, err := distec.NewDynamicFromSnapshot(f, distec.DynamicOptions{})
	f.Close()
	if err != nil {
		return nil, err
	}
	if err := distec.ReplayRecords(context.Background(), d, records); err != nil {
		return nil, err
	}
	return d, nil
}

func verifySession(dir string, out io.Writer) error {
	_, replay, info, err := persist.ScanDir(dir)
	if err != nil {
		return err
	}
	d, err := restoreSession(dir, replay)
	if err != nil {
		return err
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("recovered coloring invalid: %w", err)
	}
	st := d.Stats()
	note := ""
	if info.TornTail {
		note = " (torn final record discarded)"
	}
	fmt.Fprintf(out, "%s: ok — seq %d, %d active edges, palette %d, coloring verified%s\n",
		dir, d.Seq(), st.ActiveEdges, d.Palette(), note)
	return nil
}

func compactSession(dir string, opts persist.Options, out io.Writer) error {
	// OpenLog repairs the files (torn tail, interrupted compaction) and
	// hands back the log for the rewrite.
	lg, _, replay, err := persist.OpenLog(dir, opts)
	if err != nil {
		return err
	}
	defer lg.Close()
	before := lg.WALSize()
	d, err := restoreSession(dir, replay)
	if err != nil {
		return err
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("recovered coloring invalid (refusing to compact): %w", err)
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		return err
	}
	if err := lg.Compact(buf.Bytes()); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: compacted — snapshot now at seq %d, WAL %d bytes → %d\n",
		dir, d.Seq(), before, lg.WALSize())
	return nil
}
