// Command sessionctl inspects, verifies, and compacts the on-disk state of
// persisted dynamic sessions (the snapshot + WAL directories an edgecolord
// -data-dir maintains), offline — point it at a stopped daemon's data
// directory or at one session directory.
//
// Usage:
//
//	sessionctl [-fsync always|none] inspect <dir>
//	sessionctl [-fsync always|none] verify  <dir>
//	sessionctl [-fsync always|none] compact <dir>
//
// inspect prints each session's header, sequence state, and WAL/diff
// summary (read-only). verify fully recovers each session in memory (the
// differential-snapshot chain merged over the base, WAL replayed on top)
// and checks the resulting coloring independently (read-only). compact
// recovers each session, writes a fresh full snapshot at the head sequence
// number, and retires the WAL and diff chain; -fsync controls whether the
// rewrite is flushed to the device (always, the default) or left to the
// kernel (none — faster, survives process crashes only).
//
// <dir> is either one session directory (it contains session files —
// snapshot, wal, or diff) or a data directory whose subdirectories are
// sessions. A partial session directory (say a WAL whose snapshot is gone)
// is reported as that session's failure; empty subdirectories are skipped
// like the daemon's recovery skips them.
//
// Exit codes are pinned: 0 every session succeeded, 1 any session failed
// (a torn WAL tail is not a failure — recovery discards it by design, but
// it is reported), 2 usage errors — unknown subcommands, unknown -fsync
// modes, a missing directory operand.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/persist"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sessionctl:", err)
	}
	os.Exit(exitCode(err))
}

// exitCode pins the contract scripts depend on: 0 success, 1 operation
// failure (a session failed to scan, verify, or compact), 2 usage error.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case isUsageError(err):
		return 2
	default:
		return 1
	}
}

// usageError marks a malformed invocation, so main can exit 2 (as flag
// parsing failures conventionally do) instead of 1 (operation failed).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func isUsageError(err error) bool {
	_, ok := err.(usageError)
	return ok
}

const usage = "usage: sessionctl [-fsync always|none] inspect|verify|compact <session-dir|data-dir>"

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sessionctl", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fsyncMode := fs.String("fsync", "always", "durability of compact's rewrite: always or none")
	fs.Usage = func() {}
	if err := fs.Parse(args); err != nil {
		return usageError{msg: fmt.Sprintf("%v\n%s", err, usage)}
	}
	if *fsyncMode != "always" && *fsyncMode != "none" {
		return usageError{msg: fmt.Sprintf("unknown -fsync mode %q (want always or none)", *fsyncMode)}
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return usageError{msg: usage}
	}
	cmd, root := rest[0], rest[1]
	var fn func(dir string, out io.Writer) error
	switch cmd {
	case "inspect":
		fn = inspectSession
	case "verify":
		fn = verifySession
	case "compact":
		opts := persist.Options{Fsync: *fsyncMode == "always"}
		fn = func(dir string, out io.Writer) error { return compactSession(dir, opts, out) }
	default:
		return usageError{msg: fmt.Sprintf("unknown command %q (want inspect, verify, or compact)", cmd)}
	}
	dirs, err := sessionDirs(root)
	if err != nil {
		return err
	}
	failures := 0
	for _, dir := range dirs {
		if err := fn(dir, out); err != nil {
			fmt.Fprintf(out, "%s: FAILED: %v\n", dir, err)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d sessions failed", failures, len(dirs))
	}
	return nil
}

// holdsSessionFiles reports whether dir carries any persisted session
// state. A partial directory — say a WAL whose snapshot never made it, the
// footprint of a crash inside CreateLog — still counts: it must surface as
// that session's scan failure, not vanish from the report.
func holdsSessionFiles(dir string) bool {
	for _, name := range []string{persist.SnapshotFile, persist.WALFile, persist.DiffFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// sessionDirs resolves root to the session directories it holds: itself if
// it contains session files, otherwise every child directory that does.
// Empty child directories are skipped (the daemon's recovery does the
// same); a root with no session state anywhere is an operation failure.
func sessionDirs(root string) ([]string, error) {
	if holdsSessionFiles(root) {
		return []string{root}, nil
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if holdsSessionFiles(dir) {
			dirs = append(dirs, dir)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("%s holds no session (no snapshot, WAL, or diff file at or below it)", root)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func inspectSession(dir string, out io.Writer) error {
	snap, replay, info, err := persist.ScanDir(dir)
	if err != nil {
		return err
	}
	live := 0
	for _, a := range snap.Active {
		if a {
			live++
		}
	}
	alg := snap.Algorithm
	if alg == "" {
		alg = "bko (default)"
	}
	head := snap.Seq
	if n := len(replay); n > 0 {
		head = replay[n-1].Seq
	}
	updates := 0
	for _, rec := range replay {
		updates += len(rec.Updates)
	}
	fmt.Fprintf(out, "%s:\n", dir)
	fmt.Fprintf(out, "  algorithm %s, seed %d, palette %d configured / %d live\n",
		alg, snap.Seed, snap.ConfigPalette, snap.LivePalette)
	fmt.Fprintf(out, "  graph: n=%d m=%d (%d active, %d tombstoned)\n",
		snap.N, len(snap.EdgeU), live, len(snap.EdgeU)-live)
	fmt.Fprintf(out, "  snapshot at seq %d; WAL %d bytes, %d records (%d updates) to seq %d\n",
		snap.Seq, info.WALBytes, len(replay), updates, head)
	if info.Stale > 0 {
		fmt.Fprintf(out, "  %d stale records already covered by the snapshot (compaction leftovers)\n", info.Stale)
	}
	if info.Diffs > 0 {
		fmt.Fprintf(out, "  %d differential snapshots (%d bytes) merged over the base\n", info.Diffs, info.DiffBytes)
	}
	if info.StaleDiffs > 0 {
		fmt.Fprintf(out, "  %d stale diffs already covered by the base snapshot (compaction leftovers)\n", info.StaleDiffs)
	}
	if info.TornDiff {
		fmt.Fprintf(out, "  torn final diff record discarded (crash mid-diff-compaction)\n")
	}
	if info.PrevBytes > 0 {
		fmt.Fprintf(out, "  interrupted compaction: wal.prev of %d bytes pending merge\n", info.PrevBytes)
	}
	if info.TornTail {
		fmt.Fprintf(out, "  torn final record discarded (crash mid-append)\n")
	}
	return nil
}

// restoreSession recovers one session fully in memory: the effective
// snapshot (base with the differential-snapshot chain already merged, as
// ScanDir and OpenLog return it) restored, surviving WAL records replayed
// in order on the sequential engine. Reading the raw snapshot file instead
// would silently drop every diff-compacted batch.
func restoreSession(snap *persist.Snapshot, records []persist.Record) (*distec.Dynamic, error) {
	d, err := distec.NewDynamicFromState(snap, distec.DynamicOptions{})
	if err != nil {
		return nil, err
	}
	if err := distec.ReplayRecords(context.Background(), d, records); err != nil {
		return nil, err
	}
	return d, nil
}

func verifySession(dir string, out io.Writer) error {
	snap, replay, info, err := persist.ScanDir(dir)
	if err != nil {
		return err
	}
	d, err := restoreSession(snap, replay)
	if err != nil {
		return err
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("recovered coloring invalid: %w", err)
	}
	st := d.Stats()
	note := ""
	if info.TornTail {
		note = " (torn final record discarded)"
	}
	fmt.Fprintf(out, "%s: ok — seq %d, %d active edges, palette %d, coloring verified%s\n",
		dir, d.Seq(), st.ActiveEdges, d.Palette(), note)
	return nil
}

func compactSession(dir string, opts persist.Options, out io.Writer) error {
	// OpenLog repairs the files (torn tail, interrupted compaction) and
	// hands back the log for the rewrite.
	lg, snap, replay, err := persist.OpenLog(dir, opts)
	if err != nil {
		return err
	}
	defer lg.Close()
	before := lg.WALSize()
	d, err := restoreSession(snap, replay)
	if err != nil {
		return err
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("recovered coloring invalid (refusing to compact): %w", err)
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		return err
	}
	if err := lg.Compact(buf.Bytes()); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: compacted — snapshot now at seq %d, WAL %d bytes → %d\n",
		dir, d.Seq(), before, lg.WALSize())
	return nil
}
