package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/persist"
)

// buildSession persists a real journaled session under dir: an initial
// snapshot plus batches of WAL records, exactly as the daemon would.
func buildSession(t *testing.T, dir string, batches int) *distec.Dynamic {
	t.Helper()
	return buildSessionOpts(t, dir, batches, persist.Options{}, 0)
}

// buildSessionOpts is buildSession with persistence options and an
// optional mid-churn compaction after compactAt batches (0: never) — the
// way to grow a session whose state lives partly in a differential
// snapshot.
func buildSessionOpts(t *testing.T, dir string, batches int, opts persist.Options, compactAt int) *distec.Dynamic {
	t.Helper()
	g := distec.RandomRegular(24, 4, 3)
	d, err := distec.NewDynamic(g, distec.DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lg, err := persist.CreateLog(dir, d.Snapshot, opts)
	if err != nil {
		t.Fatal(err)
	}
	d.SetJournal(func(b distec.JournalBatch) error {
		rec := persist.Record{Seq: b.Seq, Updates: make([]persist.Update, len(b.Applied))}
		for i, up := range b.Applied {
			op := persist.OpInsert
			if up.Op == distec.DeleteEdge {
				op = persist.OpDelete
			}
			rec.Updates[i] = persist.Update{Op: op, U: int32(up.U), V: int32(up.V)}
		}
		return lg.Append(rec)
	})
	// Deterministic churn: delete each original edge, insert a fresh pair.
	for b := 0; b < batches; b++ {
		u1, v1 := g.Endpoints(distec.EdgeID(b))
		batch := []distec.Update{
			{Op: distec.DeleteEdge, U: u1, V: v1},
			{Op: distec.InsertEdge, U: u1, V: v1},
		}
		if _, err := d.ApplyBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		if compactAt > 0 && b+1 == compactAt {
			var buf bytes.Buffer
			if err := d.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			if err := lg.Compact(buf.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

func runCtl(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, &out)
	return out.String(), err
}

func TestInspect(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 5)
	out, err := runCtl(t, "inspect", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"bko (default)", "snapshot at seq 0", "5 records (10 updates) to seq 5", "n=24 m="} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
}

func TestVerify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	live := buildSession(t, dir, 5)
	out, err := runCtl(t, "verify", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "ok — seq 5") {
		t.Fatalf("verify output:\n%s", out)
	}
	if !strings.Contains(out, "coloring verified") {
		t.Fatalf("verify output:\n%s", out)
	}
	_ = live
	// Verify is read-only: the files must be byte-identical afterwards.
	before, err := os.ReadFile(filepath.Join(dir, persist.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runCtl(t, "verify", dir); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(filepath.Join(dir, persist.WALFile))
	if string(before) != string(after) {
		t.Fatal("verify modified the WAL")
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 3)
	path := filepath.Join(dir, persist.SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCtl(t, "verify", dir)
	if err == nil {
		t.Fatalf("corrupt snapshot verified:\n%s", out)
	}
	if !strings.Contains(out, "FAILED") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestVerifyReportsTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 4)
	path := filepath.Join(dir, persist.WALFile)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	out, err := runCtl(t, "verify", dir)
	if err != nil {
		t.Fatalf("torn tail must not fail verification: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok — seq 3") || !strings.Contains(out, "torn final record discarded") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	live := buildSession(t, dir, 6)
	out, err := runCtl(t, "compact", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "compacted — snapshot now at seq 6") {
		t.Fatalf("compact output:\n%s", out)
	}
	// The compacted state recovers to the same coloring, with no records
	// left to replay.
	snap, replay, _, err := persist.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 6 || len(replay) != 0 {
		t.Fatalf("after compact: snapshot seq %d, %d records", snap.Seq, len(replay))
	}
	d, err := restoreSession(snap, replay)
	if err != nil {
		t.Fatal(err)
	}
	want, got := live.Colors(), d.Colors()
	for e := range want {
		if want[e] != got[e] {
			t.Fatalf("edge %d: color %d after compact, want %d", e, got[e], want[e])
		}
	}
	// And verify still passes.
	if out, err := runCtl(t, "verify", dir); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}

func TestDataDirResolution(t *testing.T) {
	root := t.TempDir()
	buildSession(t, filepath.Join(root, "aaa"), 2)
	buildSession(t, filepath.Join(root, "bbb"), 3)
	out, err := runCtl(t, "verify", root)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "aaa: ok") || !strings.Contains(out, "bbb: ok") {
		t.Fatalf("multi-session verify output:\n%s", out)
	}
	// One corrupt session fails the run but the others still report.
	path := filepath.Join(root, "aaa", persist.SnapshotFile)
	data, _ := os.ReadFile(path)
	data[10] ^= 0x04
	os.WriteFile(path, data, 0o644)
	out, err = runCtl(t, "verify", root)
	if err == nil || !strings.Contains(err.Error(), "1 of 2 sessions failed") {
		t.Fatalf("err=%v\n%s", err, out)
	}
	if !strings.Contains(out, "bbb: ok") {
		t.Fatalf("healthy session not reported:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := runCtl(t, "inspect"); err == nil || !isUsageError(err) {
		t.Fatalf("missing dir: err = %v, want usage error", err)
	}
	if _, err := runCtl(t, "explode", t.TempDir()); err == nil || !isUsageError(err) {
		t.Fatalf("unknown command: err = %v, want usage error", err)
	}
	if _, err := runCtl(t, "-fsync", "sometimes", "compact", t.TempDir()); err == nil || !isUsageError(err) {
		t.Fatalf("unknown -fsync mode: err = %v, want usage error", err)
	}
	if _, err := runCtl(t, "-bogus", "inspect", t.TempDir()); err == nil || !isUsageError(err) {
		t.Fatalf("unknown flag: err = %v, want usage error", err)
	}
	// An empty directory is an operation failure, not a usage error.
	if _, err := runCtl(t, "inspect", t.TempDir()); err == nil || isUsageError(err) {
		t.Fatalf("empty dir: err = %v, want non-usage failure", err)
	}
}

// TestDiffCompactedSessionTools pins the tools against a session whose
// state lives partly in a differential snapshot: inspect reports the diff
// chain, verify restores the MERGED snapshot (reading the raw base file
// would silently drop every diff-covered batch), and compact folds
// everything back into one full snapshot.
func TestDiffCompactedSessionTools(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	live := buildSessionOpts(t, dir, 6, persist.Options{DiffCompact: true}, 3)
	if _, err := os.Stat(filepath.Join(dir, persist.DiffFile)); err != nil {
		t.Fatalf("no diff file after diff compaction: %v", err)
	}
	out, err := runCtl(t, "inspect", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "differential snapshot") {
		t.Fatalf("inspect silent about the diff chain:\n%s", out)
	}
	out, err = runCtl(t, "verify", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "ok — seq 6") {
		t.Fatalf("verify output:\n%s", out)
	}
	// The restored coloring is the live one, diffs included.
	snap, replay, _, err := persist.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := restoreSession(snap, replay)
	if err != nil {
		t.Fatal(err)
	}
	want, got := live.Colors(), d.Colors()
	for e := range want {
		if want[e] != got[e] {
			t.Fatalf("edge %d: color %d restored, want %d", e, got[e], want[e])
		}
	}
	// compact folds base + diffs + WAL into one full snapshot.
	out, err = runCtl(t, "compact", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dir, persist.DiffFile)); !os.IsNotExist(err) {
		t.Fatalf("diff file survived offline compact: %v", err)
	}
	if out, err := runCtl(t, "verify", dir); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}

// TestPartialSessionDir pins the report on damaged layouts: a session
// whose snapshot is gone fails loudly (exit 1 path), and an empty
// subdirectory in a data dir is skipped exactly like the daemon skips it.
func TestPartialSessionDir(t *testing.T) {
	root := t.TempDir()
	buildSession(t, filepath.Join(root, "aaa"), 2)
	// A WAL without its snapshot: the session must be listed and must fail
	// its scan — not silently disappear from the report.
	broken := filepath.Join(root, "bbb")
	buildSession(t, broken, 2)
	if err := os.Remove(filepath.Join(broken, persist.SnapshotFile)); err != nil {
		t.Fatal(err)
	}
	out, err := runCtl(t, "verify", root)
	if err == nil || isUsageError(err) {
		t.Fatalf("partial session dir: err = %v, want operation failure\n%s", err, out)
	}
	if !strings.Contains(out, "bbb: FAILED") || !strings.Contains(out, "aaa: ok") {
		t.Fatalf("verify output:\n%s", out)
	}
	// Pointed directly at the partial dir, same story.
	out, err = runCtl(t, "verify", broken)
	if err == nil || isUsageError(err) {
		t.Fatalf("direct partial dir: err = %v, want operation failure\n%s", err, out)
	}

	// An empty subdirectory is not a session: skipped, run still succeeds.
	empty := t.TempDir()
	buildSession(t, filepath.Join(empty, "aaa"), 2)
	if err := os.Mkdir(filepath.Join(empty, "zzz"), 0o755); err != nil {
		t.Fatal(err)
	}
	out, err = runCtl(t, "verify", empty)
	if err != nil {
		t.Fatalf("empty subdirectory broke the run: %v\n%s", err, out)
	}
	if strings.Contains(out, "zzz") {
		t.Fatalf("empty subdirectory reported:\n%s", out)
	}
}

// TestExitCodes pins the process exit contract scripts depend on.
func TestExitCodes(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Fatalf("success: exit %d, want 0", got)
	}
	if got := exitCode(errors.New("session failed")); got != 1 {
		t.Fatalf("operation failure: exit %d, want 1", got)
	}
	if got := exitCode(usageError{msg: "bad"}); got != 2 {
		t.Fatalf("usage error: exit %d, want 2", got)
	}
	// The usage error carries its message through the error interface —
	// that string is what main prints before exiting 2.
	if err := run([]string{"frobnicate", "x"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command error: %v", err)
	}
}

// TestUnreplayableWALFails pins the failure mode where the files are
// intact (every checksum passes) but the recorded updates cannot replay —
// here a record inserting an out-of-range node. verify must report the
// session as failed, and compact must refuse to rewrite the snapshot.
func TestUnreplayableWALFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 2)
	lg, _, _, err := persist.OpenLog(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(persist.Record{Seq: 3, Updates: []persist.Update{
		{Op: persist.OpInsert, U: 9999, V: 9998},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := runCtl(t, "verify", dir)
	if err == nil || !strings.Contains(out, "FAILED") {
		t.Fatalf("verify of unreplayable WAL: err=%v\n%s", err, out)
	}
	out, err = runCtl(t, "compact", dir)
	if err == nil || !strings.Contains(out, "FAILED") {
		t.Fatalf("compact of unreplayable WAL: err=%v\n%s", err, out)
	}
	// Refusing means the files are still there, untouched, for inspection.
	if out, err := runCtl(t, "inspect", dir); err != nil {
		t.Fatalf("inspect after refused compact: %v\n%s", err, out)
	}
}

func TestCompactFsyncNone(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 4)
	out, err := runCtl(t, "-fsync", "none", "compact", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "compacted — snapshot now at seq 4") {
		t.Fatalf("compact output:\n%s", out)
	}
	if out, err := runCtl(t, "verify", dir); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}
