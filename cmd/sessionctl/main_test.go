package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/persist"
)

// buildSession persists a real journaled session under dir: an initial
// snapshot plus batches of WAL records, exactly as the daemon would.
func buildSession(t *testing.T, dir string, batches int) *distec.Dynamic {
	t.Helper()
	g := distec.RandomRegular(24, 4, 3)
	d, err := distec.NewDynamic(g, distec.DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lg, err := persist.CreateLog(dir, d.Snapshot, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetJournal(func(b distec.JournalBatch) error {
		rec := persist.Record{Seq: b.Seq, Updates: make([]persist.Update, len(b.Applied))}
		for i, up := range b.Applied {
			op := persist.OpInsert
			if up.Op == distec.DeleteEdge {
				op = persist.OpDelete
			}
			rec.Updates[i] = persist.Update{Op: op, U: int32(up.U), V: int32(up.V)}
		}
		return lg.Append(rec)
	})
	// Deterministic churn: delete each original edge, insert a fresh pair.
	for b := 0; b < batches; b++ {
		u1, v1 := g.Endpoints(distec.EdgeID(b))
		batch := []distec.Update{
			{Op: distec.DeleteEdge, U: u1, V: v1},
			{Op: distec.InsertEdge, U: u1, V: v1},
		}
		if _, err := d.ApplyBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

func runCtl(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, &out)
	return out.String(), err
}

func TestInspect(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 5)
	out, err := runCtl(t, "inspect", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"bko (default)", "snapshot at seq 0", "5 records (10 updates) to seq 5", "n=24 m="} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
}

func TestVerify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	live := buildSession(t, dir, 5)
	out, err := runCtl(t, "verify", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "ok — seq 5") {
		t.Fatalf("verify output:\n%s", out)
	}
	if !strings.Contains(out, "coloring verified") {
		t.Fatalf("verify output:\n%s", out)
	}
	_ = live
	// Verify is read-only: the files must be byte-identical afterwards.
	before, err := os.ReadFile(filepath.Join(dir, persist.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runCtl(t, "verify", dir); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(filepath.Join(dir, persist.WALFile))
	if string(before) != string(after) {
		t.Fatal("verify modified the WAL")
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 3)
	path := filepath.Join(dir, persist.SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCtl(t, "verify", dir)
	if err == nil {
		t.Fatalf("corrupt snapshot verified:\n%s", out)
	}
	if !strings.Contains(out, "FAILED") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestVerifyReportsTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 4)
	path := filepath.Join(dir, persist.WALFile)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	out, err := runCtl(t, "verify", dir)
	if err != nil {
		t.Fatalf("torn tail must not fail verification: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok — seq 3") || !strings.Contains(out, "torn final record discarded") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	live := buildSession(t, dir, 6)
	out, err := runCtl(t, "compact", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "compacted — snapshot now at seq 6") {
		t.Fatalf("compact output:\n%s", out)
	}
	// The compacted state recovers to the same coloring, with no records
	// left to replay.
	snap, replay, _, err := persist.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 6 || len(replay) != 0 {
		t.Fatalf("after compact: snapshot seq %d, %d records", snap.Seq, len(replay))
	}
	d, err := restoreSession(dir, replay)
	if err != nil {
		t.Fatal(err)
	}
	want, got := live.Colors(), d.Colors()
	for e := range want {
		if want[e] != got[e] {
			t.Fatalf("edge %d: color %d after compact, want %d", e, got[e], want[e])
		}
	}
	// And verify still passes.
	if out, err := runCtl(t, "verify", dir); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}

func TestDataDirResolution(t *testing.T) {
	root := t.TempDir()
	buildSession(t, filepath.Join(root, "aaa"), 2)
	buildSession(t, filepath.Join(root, "bbb"), 3)
	out, err := runCtl(t, "verify", root)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "aaa: ok") || !strings.Contains(out, "bbb: ok") {
		t.Fatalf("multi-session verify output:\n%s", out)
	}
	// One corrupt session fails the run but the others still report.
	path := filepath.Join(root, "aaa", persist.SnapshotFile)
	data, _ := os.ReadFile(path)
	data[10] ^= 0x04
	os.WriteFile(path, data, 0o644)
	out, err = runCtl(t, "verify", root)
	if err == nil || !strings.Contains(err.Error(), "1 of 2 sessions failed") {
		t.Fatalf("err=%v\n%s", err, out)
	}
	if !strings.Contains(out, "bbb: ok") {
		t.Fatalf("healthy session not reported:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := runCtl(t, "inspect"); err == nil || !isUsageError(err) {
		t.Fatalf("missing dir: err = %v, want usage error", err)
	}
	if _, err := runCtl(t, "explode", t.TempDir()); err == nil || !isUsageError(err) {
		t.Fatalf("unknown command: err = %v, want usage error", err)
	}
	if _, err := runCtl(t, "-fsync", "sometimes", "compact", t.TempDir()); err == nil || !isUsageError(err) {
		t.Fatalf("unknown -fsync mode: err = %v, want usage error", err)
	}
	if _, err := runCtl(t, "-bogus", "inspect", t.TempDir()); err == nil || !isUsageError(err) {
		t.Fatalf("unknown flag: err = %v, want usage error", err)
	}
	// An empty directory is an operation failure, not a usage error.
	if _, err := runCtl(t, "inspect", t.TempDir()); err == nil || isUsageError(err) {
		t.Fatalf("empty dir: err = %v, want non-usage failure", err)
	}
}

func TestCompactFsyncNone(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	buildSession(t, dir, 4)
	out, err := runCtl(t, "-fsync", "none", "compact", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "compacted — snapshot now at seq 4") {
		t.Fatalf("compact output:\n%s", out)
	}
	if out, err := runCtl(t, "verify", dir); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}
