package distec

import "github.com/distec/distec/internal/graph"

// The generators below construct the workload families used throughout the
// examples and experiments. All randomized generators are deterministic for
// a given seed.

// Cycle returns the n-node cycle C_n (n ≥ 3).
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Path returns the n-node path P_n.
func Path(n int) *Graph { return graph.Path(n) }

// Star returns the star K_{1,n−1} with center node 0.
func Star(n int) *Graph { return graph.Star(n) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// CompleteBipartite returns K_{a,b} with parts {0..a−1} and {a..a+b−1}.
func CompleteBipartite(a, b int) *Graph { return graph.CompleteBipartite(a, b) }

// Grid returns the r×c grid graph.
func Grid(r, c int) *Graph { return graph.Grid(r, c) }

// Torus returns the r×c wrap-around grid (r, c ≥ 3).
func Torus(r, c int) *Graph { return graph.Torus(r, c) }

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph { return graph.Hypercube(d) }

// RandomRegular returns an exactly d-regular random graph on n nodes
// (n·d even, d < n).
func RandomRegular(n, d int, seed uint64) *Graph { return graph.RandomRegular(n, d, seed) }

// RandomBipartiteRegular returns a bipartite d-regular graph on 2n nodes.
func RandomBipartiteRegular(n, d int, seed uint64) *Graph {
	return graph.RandomBipartiteRegular(n, d, seed)
}

// GNP returns an Erdős–Rényi G(n, p) sample.
func GNP(n int, p float64, seed uint64) *Graph { return graph.GNP(n, p, seed) }

// PowerLaw returns a Chung–Lu style power-law graph with exponent gamma and
// maximum expected degree maxDeg.
func PowerLaw(n int, gamma float64, maxDeg int, seed uint64) *Graph {
	return graph.PowerLaw(n, gamma, maxDeg, seed)
}

// RandomGeometric returns a random geometric graph on n points in the unit
// square with connection radius r — the standard wireless network model.
func RandomGeometric(n int, r float64, seed uint64) *Graph {
	return graph.RandomGeometric(n, r, seed)
}

// RandomTree returns a uniform random recursive tree on n nodes.
func RandomTree(n int, seed uint64) *Graph { return graph.RandomTree(n, seed) }

// Caterpillar returns a spine path with pendant legs per spine node.
func Caterpillar(spine, legs int) *Graph { return graph.Caterpillar(spine, legs) }

// CliqueChain returns k cliques of size s chained at shared nodes.
func CliqueChain(k, s int) *Graph { return graph.CliqueChain(k, s) }

// BarabasiAlbert returns a preferential-attachment graph: each arriving node
// attaches to k existing nodes chosen proportionally to degree.
func BarabasiAlbert(n, k int, seed uint64) *Graph { return graph.BarabasiAlbert(n, k, seed) }
