package distec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/distec/distec/internal/bench"
)

// This file is the randomized property-test harness of the coloring stack:
// generated graphs × palettes × update streams, for every algorithm, with
// Verify asserted after every batch — and, on failure, delta-debugging
// shrinking that prints a minimal reproducing trial.
//
// The two palette regimes are the library's two guarantees:
//
//   - 2Δ−1 (the paper's regime): every algorithm colors it, and a dynamic
//     session never rejects an update (pigeonhole).
//   - Δ+1 (Vizing's regime): the static vizing algorithm colors it, and a
//     dynamic session never rejects an update because the augmentation
//     fallback serves what the target-color repair cannot.
//
// Δ here is the maximum degree over the whole stream evolution, computed
// before the run, so the fixed session palette stays ≥ Δ_current+1 at every
// update — the precondition under which zero ErrPaletteExhausted errors is
// a theorem, which the harness asserts empirically.

// propTrial fully describes one reproducible dynamic-coloring trial.
type propTrial struct {
	n       int
	edges   [][2]int // initial graph
	alg     Algorithm
	palette int // fixed session palette
	batch   int // updates per ApplyBatch
	ops     []Update
}

// buildGraph materializes the trial's initial graph.
func (tr propTrial) buildGraph() (*Graph, error) {
	g := NewGraph(tr.n)
	for _, e := range tr.edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("initial edge {%d,%d}: %w", e[0], e[1], err)
		}
	}
	return g, nil
}

// runPropTrial executes one trial and returns the first property violation:
// a coloring error, an update rejection (ErrPaletteExhausted included: the
// palettes are chosen so rejections must never happen), or a failed Verify
// after any batch.
func runPropTrial(tr propTrial) error {
	g, err := tr.buildGraph()
	if err != nil {
		return err
	}
	// The initial coloring: the session algorithm where the palette meets
	// its slack bound, otherwise vizing (the only solver below Δ̄+1).
	initAlg := tr.alg
	if tr.palette <= g.MaxEdgeDegree() {
		initAlg = Vizing
	}
	init, err := ColorEdges(g, Options{Algorithm: initAlg, Palette: tr.palette, Seed: 5})
	if err != nil {
		return fmt.Errorf("initial coloring (%s): %w", initAlg, err)
	}
	if err := Verify(g, init.Colors); err != nil {
		return fmt.Errorf("initial coloring (%s) invalid: %w", initAlg, err)
	}
	d, err := NewDynamicFrom(g, init.Colors, DynamicOptions{Options: Options{
		Algorithm: tr.alg, Palette: tr.palette, Seed: 5,
	}})
	if err != nil {
		return fmt.Errorf("session: %w", err)
	}
	for start := 0; start < len(tr.ops); start += tr.batch {
		end := start + tr.batch
		if end > len(tr.ops) {
			end = len(tr.ops)
		}
		if _, err := d.ApplyBatch(ctxBackground, tr.ops[start:end]); err != nil {
			return fmt.Errorf("batch [%d:%d]: %w", start, end, err)
		}
		if err := d.Verify(); err != nil {
			return fmt.Errorf("verify after batch [%d:%d]: %w", start, end, err)
		}
	}
	if st := d.Stats(); st.Palette != tr.palette {
		return fmt.Errorf("fixed palette drifted: %d -> %d", tr.palette, st.Palette)
	}
	return nil
}

var ctxBackground = context.Background()

// normalizeOps drops stream entries that are invalid against the evolving
// live-edge set (duplicate inserts, deletes of absent edges, self-loops,
// out-of-range endpoints), so shrunk candidates stay well-formed streams.
func normalizeOps(n int, edges [][2]int, ops []Update) []Update {
	live := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		live[[2]int{u, v}] = true
	}
	out := make([]Update, 0, len(ops))
	for _, op := range ops {
		u, v := op.U, op.V
		if u > v {
			u, v = v, u
		}
		if u == v || u < 0 || v >= n {
			continue
		}
		key := [2]int{u, v}
		switch op.Op {
		case InsertEdge:
			if live[key] {
				continue
			}
			live[key] = true
		case DeleteEdge:
			if !live[key] {
				continue
			}
			delete(live, key)
		default:
			continue
		}
		out = append(out, op)
	}
	return out
}

// maxStreamDegree simulates the stream and returns the maximum node degree
// the graph ever reaches — the Δ the fixed palettes are derived from.
func maxStreamDegree(n int, edges [][2]int, ops []Update) int {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	for _, op := range ops {
		if op.Op == InsertEdge {
			deg[op.U]++
			deg[op.V]++
			for _, w := range []int{op.U, op.V} {
				if deg[w] > maxDeg {
					maxDeg = deg[w]
				}
			}
		} else {
			deg[op.U]--
			deg[op.V]--
		}
	}
	return maxDeg
}

// shrinkTrial minimizes a failing trial with bounded delta debugging:
// chunked removal over the op stream, then removal of initial edges, each
// candidate re-normalized and re-run. Deterministic trials make the
// predicate stable.
func shrinkTrial(tr propTrial, fails func(propTrial) bool) propTrial {
	budget := 250
	attempt := func(cand propTrial) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return fails(cand)
	}
	// Op-stream chunks, halving sizes.
	for size := len(tr.ops); size >= 1; size /= 2 {
		for start := 0; start+size <= len(tr.ops); {
			shorter := append(append([]Update{}, tr.ops[:start]...), tr.ops[start+size:]...)
			cand := tr
			cand.ops = normalizeOps(tr.n, tr.edges, shorter)
			if len(cand.ops) < len(tr.ops) && attempt(cand) {
				tr = cand // retry the same window against the shorter stream
				continue
			}
			start += size
		}
	}
	// Initial edges, one at a time.
	for i := 0; i < len(tr.edges); {
		cand := tr
		cand.edges = append(append([][2]int{}, tr.edges[:i]...), tr.edges[i+1:]...)
		cand.ops = normalizeOps(tr.n, cand.edges, tr.ops)
		if attempt(cand) {
			tr = cand
			continue
		}
		i++
	}
	// Batch size down to 1 keeps the failing batch as small as possible.
	for tr.batch > 1 {
		cand := tr
		cand.batch = 1
		if !attempt(cand) {
			break
		}
		tr = cand
	}
	return tr
}

// formatTrial renders a trial as a paste-able reproduction.
func formatTrial(tr propTrial) string {
	var b strings.Builder
	fmt.Fprintf(&b, "propTrial{n: %d, alg: %q, palette: %d, batch: %d,\n", tr.n, tr.alg, tr.palette, tr.batch)
	fmt.Fprintf(&b, "  edges: %#v,\n  ops: []Update{\n", tr.edges)
	for _, op := range tr.ops {
		fmt.Fprintf(&b, "    {Op: %q, U: %d, V: %d},\n", op.Op, op.U, op.V)
	}
	b.WriteString("  },\n}")
	return b.String()
}

// checkTrial runs one trial and, on failure, shrinks it and fails the test
// with the minimal reproduction.
func checkTrial(t *testing.T, tr propTrial) {
	t.Helper()
	err := runPropTrial(tr)
	if err == nil {
		return
	}
	min := shrinkTrial(tr, func(cand propTrial) bool { return runPropTrial(cand) != nil })
	t.Fatalf("property violated: %v\nminimal reproduction (%d initial edges, %d ops, shrunk from %d/%d):\n%s\nfinal error: %v",
		err, len(min.edges), len(min.ops), len(tr.edges), len(tr.ops), formatTrial(min), runPropTrial(min))
}

// genTrialBase generates a random initial graph and a consistent update
// stream (no palette yet). The stream is degree-capped near the initial
// maximum (bench.ChurnCapped): an uncapped random stream inflates a few
// nodes far beyond the typical degree, which makes the Δ+1 palette (Δ over
// the whole evolution) slack almost everywhere and the interesting
// repair/augmentation tiers go untested.
func genTrialBase(rng *rand.Rand) (n int, edges [][2]int, ops []Update) {
	n = 6 + rng.Intn(22)
	p := 0.05 + rng.Float64()*0.25
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	degCap := 3
	if d := g.MaxDegree(); d > degCap {
		degCap = d
	}
	steps := 40 + rng.Intn(80)
	ops = churnUpdates(g, steps, degCap, rng.Uint64())
	return n, edges, ops
}

// churnUpdates is bench.ChurnCapped converted to the public Update type.
func churnUpdates(g *Graph, count, maxDeg int, seed uint64) []Update {
	ops := make([]Update, 0, count)
	for _, op := range bench.ChurnCapped(g, count, maxDeg, seed) {
		kind := InsertEdge
		if op.Delete {
			kind = DeleteEdge
		}
		ops = append(ops, Update{Op: kind, U: op.U, V: op.V})
	}
	return ops
}

// TestPropertyDynamicStreams is the harness matrix: every algorithm × both
// palette regimes × several generated graph/stream pairs, Verify after
// every batch, zero update rejections.
func TestPropertyDynamicStreams(t *testing.T) {
	algorithms := []Algorithm{BKO, BKOTheory, PR01, GreedyClasses, Randomized, Vizing}
	const trialsPerCase = 3
	for _, alg := range algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(alg)) * 7877))
			for i := 0; i < trialsPerCase; i++ {
				n, edges, ops := genTrialBase(rng)
				maxDeg := maxStreamDegree(n, edges, ops)
				for _, palette := range []int{2*maxDeg - 1, maxDeg + 1} {
					if palette < 1 {
						palette = 1
					}
					checkTrial(t, propTrial{
						n:       n,
						edges:   edges,
						alg:     alg,
						palette: palette,
						batch:   1 + rng.Intn(9),
						ops:     ops,
					})
				}
			}
		})
	}
}

// runPassivationTrial runs one trial twice in lockstep — a control session
// that stays resident, and a subject that passivates (snapshot, marked,
// discarded) and rehydrates (restored from the snapshot bytes) at random
// batch boundaries — and demands bit-identical colorings after every
// batch. This is the equivalence the daemon's LRU eviction leans on:
// a session's future must not depend on whether it ever left memory.
func runPassivationTrial(tr propTrial, rng *rand.Rand) error {
	gc, err := tr.buildGraph()
	if err != nil {
		return err
	}
	gs, err := tr.buildGraph()
	if err != nil {
		return err
	}
	initAlg := tr.alg
	if tr.palette <= gc.MaxEdgeDegree() {
		initAlg = Vizing
	}
	init, err := ColorEdges(gc, Options{Algorithm: initAlg, Palette: tr.palette, Seed: 5})
	if err != nil {
		return fmt.Errorf("initial coloring (%s): %w", initAlg, err)
	}
	opts := DynamicOptions{Options: Options{Algorithm: tr.alg, Palette: tr.palette, Seed: 5}}
	control, err := NewDynamicFrom(gc, init.Colors, opts)
	if err != nil {
		return fmt.Errorf("control session: %w", err)
	}
	subject, err := NewDynamicFrom(gs, init.Colors, opts)
	if err != nil {
		return fmt.Errorf("subject session: %w", err)
	}
	cycled := false
	for start := 0; start < len(tr.ops); start += tr.batch {
		end := start + tr.batch
		if end > len(tr.ops) {
			end = len(tr.ops)
		}
		batch := tr.ops[start:end]
		// Passivate-then-rehydrate the subject at random boundaries, always
		// at least once (the first one).
		if !cycled || rng.Float64() < 0.35 {
			cycled = true
			var buf bytes.Buffer
			if err := subject.Snapshot(&buf); err != nil {
				return fmt.Errorf("snapshot before batch [%d:%d]: %w", start, end, err)
			}
			if err := subject.Passivate(); err != nil {
				return fmt.Errorf("passivate before batch [%d:%d]: %w", start, end, err)
			}
			// A passivated session is terminal: the interrupted-batch path
			// must answer ErrSessionPassivated, never apply.
			if _, err := subject.ApplyBatch(ctxBackground, batch); !errors.Is(err, ErrSessionPassivated) {
				return fmt.Errorf("passivated session answered batch [%d:%d] with %v, want ErrSessionPassivated", start, end, err)
			}
			subject, err = NewDynamicFromSnapshot(bytes.NewReader(buf.Bytes()), DynamicOptions{})
			if err != nil {
				return fmt.Errorf("rehydrate before batch [%d:%d]: %w", start, end, err)
			}
		}
		if _, err := control.ApplyBatch(ctxBackground, batch); err != nil {
			return fmt.Errorf("control batch [%d:%d]: %w", start, end, err)
		}
		if _, err := subject.ApplyBatch(ctxBackground, batch); err != nil {
			return fmt.Errorf("subject batch [%d:%d]: %w", start, end, err)
		}
		if err := subject.Verify(); err != nil {
			return fmt.Errorf("subject verify after batch [%d:%d]: %w", start, end, err)
		}
		// Bit-identical equivalence on everything a snapshot restores:
		// sequence, palette, and the full per-edge coloring, tombstones
		// included. (DynamicStats repair counters reset on restore, by
		// design — they are observability, not state.)
		if cs, ss := control.Seq(), subject.Seq(); cs != ss {
			return fmt.Errorf("after batch [%d:%d]: control seq %d, subject seq %d", start, end, cs, ss)
		}
		if cp, sp := control.Palette(), subject.Palette(); cp != sp {
			return fmt.Errorf("after batch [%d:%d]: control palette %d, subject palette %d", start, end, cp, sp)
		}
		cc, sc := control.Colors(), subject.Colors()
		if len(cc) != len(sc) {
			return fmt.Errorf("after batch [%d:%d]: control %d edges, subject %d", start, end, len(cc), len(sc))
		}
		for e := range cc {
			if cc[e] != sc[e] {
				return fmt.Errorf("after batch [%d:%d]: edge %d colored %d resident, %d through passivation", start, end, e, cc[e], sc[e])
			}
		}
	}
	return nil
}

// TestPropertyPassivationEquivalence: for every algorithm and both palette
// regimes, a session that passivates and rehydrates at random batch
// boundaries produces bit-identical colorings to one that never left
// memory.
func TestPropertyPassivationEquivalence(t *testing.T) {
	algorithms := []Algorithm{BKO, BKOTheory, PR01, GreedyClasses, Randomized, Vizing}
	const trialsPerCase = 2
	for _, alg := range algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(alg))*104729 + 17))
			for i := 0; i < trialsPerCase; i++ {
				n, edges, ops := genTrialBase(rng)
				maxDeg := maxStreamDegree(n, edges, ops)
				for _, palette := range []int{2*maxDeg - 1, maxDeg + 1} {
					if palette < 1 {
						palette = 1
					}
					tr := propTrial{
						n:       n,
						edges:   edges,
						alg:     alg,
						palette: palette,
						batch:   1 + rng.Intn(9),
						ops:     ops,
					}
					if err := runPassivationTrial(tr, rng); err != nil {
						t.Fatalf("trial %d palette %d: %v", i, palette, err)
					}
				}
			}
		})
	}
}

// TestPropertyThousandUpdateStream is the Δ+1 acceptance run: a 1200-update
// randomized stream on a 144-edge graph under the fixed palette Δ+1 (Δ over
// the whole evolution) must complete with zero ErrPaletteExhausted errors —
// runPropTrial treats any rejection as a failure — while actually
// exercising the augmentation tier.
func TestPropertyThousandUpdateStream(t *testing.T) {
	g := RandomRegular(48, 6, 7)
	edges := make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	// Degree-capped stream: inserts never push a node beyond the initial
	// Δ=6, so the fixed palette Δ+1=7 stays tight at every single update —
	// the hardest regime the layer guarantees.
	delta := g.MaxDegree()
	ops := churnUpdates(g, 1200, delta, 424242)
	maxDeg := maxStreamDegree(g.N(), edges, ops)
	tr := propTrial{n: g.N(), edges: edges, alg: BKO, palette: maxDeg + 1, batch: 25, ops: ops}
	checkTrial(t, tr)

	// Re-run outside the harness to read the tier statistics.
	gg, err := tr.buildGraph()
	if err != nil {
		t.Fatal(err)
	}
	init, err := ColorEdges(gg, Options{Algorithm: Vizing, Palette: tr.palette})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamicFrom(gg, init.Colors, DynamicOptions{Options: Options{Palette: tr.palette}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(ctxBackground, tr.ops); err != nil {
		t.Fatalf("1200-update stream rejected an update: %v", err)
	}
	st := d.Stats()
	if st.Inserts+st.Deletes != uint64(len(tr.ops)) {
		t.Fatalf("applied %d updates, want %d", st.Inserts+st.Deletes, len(tr.ops))
	}
	if st.Augmentations == 0 {
		t.Fatalf("Δ+1 stream never needed an augmentation — the palette was not tight (stats %+v)", st)
	}
	t.Logf("Δ+1=%d: %d updates, %d greedy, %d repairs (%d edges), %d augmentations (%d edges)",
		tr.palette, st.Inserts+st.Deletes, st.GreedyInserts, st.Repairs, st.RepairedEdges, st.Augmentations, st.AugmentedEdges)
}

// TestPropertyShrinkerMinimizes exercises the harness's own failure path:
// against a synthetic predicate ("any insert touches node 0"), the shrinker
// must reduce a long random trial to a single-op stream with no spare
// initial edges — so when a real violation appears, the printed
// reproduction is actually minimal.
func TestPropertyShrinkerMinimizes(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	n, edges, ops := genTrialBase(rng)
	tr := propTrial{n: n, edges: edges, alg: BKO, palette: 9, batch: 4, ops: ops}
	fails := func(cand propTrial) bool {
		for _, op := range cand.ops {
			if op.Op == InsertEdge && (op.U == 0 || op.V == 0) {
				return true
			}
		}
		return false
	}
	if !fails(tr) {
		// Ensure the predicate holds on the seed trial.
		tr.ops = append(tr.ops, Update{Op: InsertEdge, U: 0, V: n - 1})
		tr.ops = normalizeOps(tr.n, tr.edges, tr.ops)
		if !fails(tr) {
			t.Fatal("test bug: seed trial does not fail")
		}
	}
	min := shrinkTrial(tr, fails)
	if !fails(min) {
		t.Fatal("shrinker lost the failure")
	}
	if len(min.ops) != 1 {
		t.Fatalf("shrunk stream has %d ops, want 1: %s", len(min.ops), formatTrial(min))
	}
	if len(min.edges) != 0 {
		t.Fatalf("shrunk trial keeps %d initial edges, want 0", len(min.edges))
	}
}

// TestVizingBenchWorkloads is the static acceptance criterion: ColorEdges
// with Palette = Δ+1 and Algorithm vizing produces a verified proper
// coloring on every workload family of internal/bench.
func TestVizingBenchWorkloads(t *testing.T) {
	for _, w := range bench.Families(400, 8, 3) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if w.G.M() == 0 {
				t.Skip("empty workload")
			}
			palette := w.G.MaxDegree() + 1
			res, err := ColorEdges(w.G, Options{Algorithm: Vizing, Palette: palette})
			if err != nil {
				t.Fatalf("n=%d m=%d Δ+1=%d: %v", w.G.N(), w.G.M(), palette, err)
			}
			if err := Verify(w.G, res.Colors); err != nil {
				t.Fatal(err)
			}
			for e, c := range res.Colors {
				if c < 0 || c >= palette {
					t.Fatalf("edge %d colored %d outside [0,%d)", e, c, palette)
				}
			}
			t.Logf("%s: n=%d m=%d Δ=%d Δ̄=%d → %d colors, %d augmentations",
				w.Name, w.G.N(), w.G.M(), w.G.MaxDegree(), w.G.MaxEdgeDegree(), res.ColorsUsed, res.Rounds)
		})
	}
}

// TestPropertyStaticColorings sweeps the static API: every algorithm at its
// 2Δ−1 regime and vizing additionally at Δ+1, on generated graphs, output
// verified.
func TestPropertyStaticColorings(t *testing.T) {
	algorithms := []Algorithm{BKO, BKOTheory, PR01, GreedyClasses, Randomized, Vizing}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4; i++ {
		n, edges, _ := genTrialBase(rng)
		tr := propTrial{n: n, edges: edges}
		g, err := tr.buildGraph()
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range algorithms {
			res, err := ColorEdges(g, Options{Algorithm: alg, Seed: 11})
			if err != nil {
				t.Fatalf("graph %d, %s: %v", i, alg, err)
			}
			if err := Verify(g, res.Colors); err != nil {
				t.Fatalf("graph %d, %s: %v", i, alg, err)
			}
		}
		// Vizing's exclusive regime: exactly Δ+1 colors.
		if g.MaxDegree() > 0 {
			res, err := ColorEdges(g, Options{Algorithm: Vizing, Palette: g.MaxDegree() + 1})
			if err != nil {
				t.Fatalf("graph %d, vizing Δ+1: %v", i, err)
			}
			if err := Verify(g, res.Colors); err != nil {
				t.Fatalf("graph %d, vizing Δ+1: %v", i, err)
			}
			if res.ColorsUsed > g.MaxDegree()+1 {
				t.Fatalf("graph %d: vizing used %d colors at Δ+1=%d", i, res.ColorsUsed, g.MaxDegree()+1)
			}
		}
	}
}
