package distec

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/distec/distec/internal/bench"
)

// dynamicAlgorithms is the full solver matrix the dynamic repair path must
// support.
var dynamicAlgorithms = []Algorithm{BKO, BKOTheory, PR01, GreedyClasses, Randomized, Vizing}

// TestDynamicStreamEquivalence is the acceptance test of the dynamic layer:
// a ≥10³-update randomized insert/delete stream, with every one of the six
// algorithms as the repair solver, verifying after every single operation
// that the maintained coloring is proper and stays inside the palette.
// A tight fixed palette keeps the conflict-region repair path hot.
func TestDynamicStreamEquivalence(t *testing.T) {
	const updates = 1100
	for _, alg := range dynamicAlgorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			g := RandomRegular(48, 6, 7)
			// Δ̄+2 is well below the always-greedy threshold 2Δ−1, so inserts
			// regularly saturate both endpoints and must repair.
			palette := g.MaxEdgeDegree() + 2
			d, err := NewDynamic(g, DynamicOptions{Options: Options{
				Algorithm: alg, Palette: palette, Seed: 3,
			}})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(alg)) * 99991))
			n := g.N()
			applied, rejected := 0, 0
			for applied < updates {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				var opErr error
				refused := false
				if _, ok := g.HasEdge(u, v); ok && d.Color(mustEdge(t, g, u, v)) >= 0 {
					opErr = d.Delete(u, v)
				} else {
					_, _, opErr = d.Insert(u, v)
					if errors.Is(opErr, ErrPaletteExhausted) {
						// Legal refusal under a tight palette; the coloring
						// must still verify below, but only applied updates
						// count toward the stream quota.
						rejected++
						refused = true
						opErr = nil
					}
				}
				if opErr != nil {
					t.Fatalf("update %d (%d,%d): %v", applied, u, v, opErr)
				}
				if err := d.Verify(); err != nil {
					t.Fatalf("after update %d (%d,%d): %v", applied, u, v, err)
				}
				if !refused {
					applied++
				}
			}
			st := d.Stats()
			if st.Repairs == 0 {
				t.Fatalf("stream never exercised the repair path (stats %+v)", st)
			}
			if st.Palette != palette {
				t.Fatalf("fixed palette drifted: %d -> %d", palette, st.Palette)
			}
			t.Logf("%s: %d inserts (%d greedy, %d repairs over %d edges), %d deletes, %d rejected",
				alg, st.Inserts, st.GreedyInserts, st.Repairs, st.RepairedEdges, st.Deletes, rejected)
		})
	}
}

func mustEdge(t *testing.T, g *Graph, u, v int) EdgeID {
	t.Helper()
	id, ok := g.HasEdge(u, v)
	if !ok {
		t.Fatalf("edge {%d,%d} vanished", u, v)
	}
	return id
}

// TestDynamicAutoPalette checks the default mode: the palette grows with Δ
// and every insert is served greedily, staying within 2Δ−1.
func TestDynamicAutoPalette(t *testing.T) {
	g := Cycle(64)
	d, err := NewDynamic(g, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		u, v := rng.Intn(64), rng.Intn(64)
		if u == v {
			continue
		}
		if _, ok := g.HasEdge(u, v); ok && d.Color(mustEdge(t, g, u, v)) >= 0 {
			if err := d.Delete(u, v); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		} else if _, _, err := d.Insert(u, v); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("after update %d: %v", i, err)
		}
	}
	st := d.Stats()
	if st.Repairs != 0 {
		t.Fatalf("auto palette repaired %d times; greedy should always succeed", st.Repairs)
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		deg := 0
		for _, e := range g.Incident(v) {
			if d.Color(e) >= 0 {
				deg++
			}
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	for e := 0; e < g.M(); e++ {
		if c := d.Color(EdgeID(e)); c >= d.Palette() {
			t.Fatalf("edge %d colored %d outside palette %d", e, c, d.Palette())
		}
	}
}

// TestDynamicBatchOnPool runs a session's update batches as jobs on a
// shared serving pool and checks results match the one-shot session
// update-for-update.
func TestDynamicBatchOnPool(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 2})
	defer pool.Close()
	build := func(p *Pool) *Dynamic {
		g := RandomRegular(40, 6, 21)
		d, err := NewDynamic(g, DynamicOptions{
			Options: Options{Palette: g.MaxEdgeDegree() + 2, Seed: 9},
			Pool:    p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	pooled, oneshot := build(pool), build(nil)

	rng := rand.New(rand.NewSource(77))
	var batch []Update
	for i := 0; i < 300; i++ {
		u, v := rng.Intn(40), rng.Intn(40)
		if u == v {
			continue
		}
		batch = append(batch, Update{Op: InsertEdge, U: u, V: v})
		if len(batch) < 8 {
			continue
		}
		// Random insert streams legitimately fail mid-batch (duplicate
		// edges, palette refusals); what must match is the applied prefix
		// and the error disposition of the two sessions.
		prs, perr := pooled.ApplyBatch(context.Background(), batch)
		ors, oerr := oneshot.ApplyBatch(context.Background(), batch)
		if (perr == nil) != (oerr == nil) {
			t.Fatalf("batch %d diverged: pool err=%v, one-shot err=%v", i, perr, oerr)
		}
		if len(prs) != len(ors) {
			t.Fatalf("batch %d: pool applied %d updates, one-shot %d", i, len(prs), len(ors))
		}
		for j := range prs {
			if prs[j].Edge != ors[j].Edge {
				t.Fatalf("batch %d result %d: edge %d vs %d", i, j, prs[j].Edge, ors[j].Edge)
			}
		}
		if err := pooled.Verify(); err != nil {
			t.Fatalf("pooled session after batch %d: %v", i, err)
		}
		if err := oneshot.Verify(); err != nil {
			t.Fatalf("one-shot session after batch %d: %v", i, err)
		}
		batch = batch[:0]
	}
	if pooled.Stats().Inserts == 0 {
		t.Fatal("no batch applied")
	}
}

// TestDynamicDoubleDelete is the regression test for the typed
// ErrEdgeInactive contract: a second delete of the same edge must fail with
// ErrEdgeInactive and must NOT free the color again — otherwise a
// subsequent insert could observe a color as free while a live edge still
// holds it and produce a conflicting coloring.
func TestDynamicDoubleDelete(t *testing.T) {
	g := Complete(6) // Δ=5, every pair is an edge
	palette := g.MaxEdgeDegree() + 2
	d, err := NewDynamic(g, DynamicOptions{Options: Options{Palette: palette}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(0, 1); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	if err := d.Delete(0, 1); !errors.Is(err, ErrEdgeInactive) {
		t.Fatalf("double delete: want ErrEdgeInactive, got %v", err)
	}
	if err := d.Delete(1, 0); !errors.Is(err, ErrEdgeInactive) {
		t.Fatalf("double delete (swapped endpoints): want ErrEdgeInactive, got %v", err)
	}
	// A delete of an edge that never existed is the same client mistake.
	g2 := Cycle(8)
	d2, err := NewDynamic(g2, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Delete(0, 4); !errors.Is(err, ErrEdgeInactive) {
		t.Fatalf("delete of absent edge: want ErrEdgeInactive, got %v", err)
	}
	// Double delete then insert: the revived edge and every neighbor must
	// still form a proper coloring (this is what a double color-free would
	// break).
	if _, _, err := d.Insert(0, 1); err != nil {
		t.Fatalf("reinsert after double delete: %v", err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("coloring after double-delete/insert cycle: %v", err)
	}
	// Batch form: the failing delete stops the batch with the typed error
	// and the applied prefix intact.
	rs, err := d.ApplyBatch(context.Background(), []Update{
		{Op: DeleteEdge, U: 2, V: 3},
		{Op: DeleteEdge, U: 2, V: 3},
		{Op: InsertEdge, U: 2, V: 3},
	})
	if !errors.Is(err, ErrEdgeInactive) {
		t.Fatalf("batch double delete: want ErrEdgeInactive, got %v", err)
	}
	if len(rs) != 1 {
		t.Fatalf("batch applied %d updates, want 1", len(rs))
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicAugmentationTier pins the new guarantee: under a fixed Δ+1
// palette — far below the 2Δ−1 regime and below the slack bound Δ̄+1 the
// repair subinstances need — an insert stream is still never rejected,
// because inserts the target-color repair cannot serve fall through to the
// Vizing augmentation. Δ is kept stable by inserting only edges that do not
// raise the maximum degree beyond the initial bound.
func TestDynamicAugmentationTier(t *testing.T) {
	g := RandomRegular(32, 6, 13)
	delta := g.MaxDegree()
	palette := delta + 1
	init, err := ColorEdges(g, Options{Algorithm: Vizing, Palette: palette})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamicFrom(g, init.Colors, DynamicOptions{Options: Options{Palette: palette}})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range bench.ChurnCapped(g, 600, delta, 23) {
		if op.Delete {
			if err := d.Delete(op.U, op.V); err != nil {
				t.Fatalf("delete {%d,%d}: %v", op.U, op.V, err)
			}
		} else if _, _, err := d.Insert(op.U, op.V); err != nil {
			t.Fatalf("insert {%d,%d} rejected under Δ+1 palette: %v", op.U, op.V, err)
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("after update %d: %v", i, err)
		}
	}
	st := d.Stats()
	if st.Augmentations == 0 {
		t.Fatalf("Δ+1 stream never exercised the augmentation tier (stats %+v)", st)
	}
	t.Logf("Δ+1 palette: %d inserts (%d greedy, %d repairs, %d augmentations over %d edges)",
		st.Inserts, st.GreedyInserts, st.Repairs, st.Augmentations, st.AugmentedEdges)
}

// TestDynamicVizingAutoPalette: a session created with Algorithm Vizing and
// Palette 0 must actually live in the Δ+1 regime — auto palette Δ+1,
// growing with Δ — not silently fall back to the 2Δ−1 auto palette of the
// other algorithms. Updates are never rejected: the palette tracks Δ+1, so
// the augmentation tier always succeeds.
func TestDynamicVizingAutoPalette(t *testing.T) {
	g := RandomRegular(24, 4, 5)
	delta := g.MaxDegree()
	d, err := NewDynamic(g, DynamicOptions{Options: Options{Algorithm: Vizing}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Palette(); got != delta+1 {
		t.Fatalf("vizing session auto palette = %d, want Δ+1 = %d", got, delta+1)
	}
	// Degree-capped churn keeps Δ at 4: the palette must stay 5 and the
	// tight-palette tiers must fire without a single rejection.
	for i, op := range bench.ChurnCapped(g, 300, delta, 77) {
		var err error
		if op.Delete {
			err = d.Delete(op.U, op.V)
		} else {
			_, _, err = d.Insert(op.U, op.V)
		}
		if err != nil {
			t.Fatalf("update %d (%+v): %v", i, op, err)
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("after update %d: %v", i, err)
		}
	}
	if got := d.Palette(); got != delta+1 {
		t.Fatalf("capped churn grew the palette to %d, want it pinned at %d", got, delta+1)
	}
	st := d.Stats()
	if st.Repairs+st.Augmentations == 0 {
		t.Fatalf("Δ+1 auto palette never exercised the tight tiers (stats %+v)", st)
	}
	// Raising Δ grows the palette to the new Δ+1 instead of rejecting. The
	// palette is monotone (it never shrinks on deletes), so the invariant
	// to pin is: after each insert, palette = max(palette before, post-
	// insert degree of either endpoint + 1) — tracked here seed-
	// independently rather than equated with the final live Δ.
	liveDeg := func(v int) int {
		n := 0
		for _, e := range g.Incident(v) {
			if d.Color(e) >= 0 {
				n++
			}
		}
		return n
	}
	expected := d.Palette()
	u := 0
	added := 0
	for v := 1; v < g.N() && added < 2; v++ {
		if id, ok := g.HasEdge(u, v); ok && d.Color(id) >= 0 {
			continue
		}
		for _, w := range []int{u, v} {
			if p := liveDeg(w) + 2; p > expected {
				expected = p
			}
		}
		if _, _, err := d.Insert(u, v); err != nil {
			t.Fatalf("degree-raising insert {%d,%d}: %v", u, v, err)
		}
		added++
	}
	if added == 0 {
		t.Fatal("test bug: node 0 had no absent neighbor to insert")
	}
	if got := d.Palette(); got != expected {
		t.Fatalf("after degree-raising inserts: palette %d, want %d", got, expected)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicBatchCancellation pins that a cancelled context stops a batch
// between updates and reports the applied prefix.
func TestDynamicBatchCancellation(t *testing.T) {
	g := Cycle(32)
	d, err := NewDynamic(g, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := d.ApplyBatch(ctx, []Update{{Op: InsertEdge, U: 0, V: 2}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (results %v)", err, rs)
	}
	if len(rs) != 0 {
		t.Fatalf("cancelled batch applied %d updates", len(rs))
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}
