package distec

import (
	"errors"
	"strings"
	"testing"
)

// FuzzDynamic decodes arbitrary byte streams into a dynamic-coloring
// session — node count, palette, algorithm, then a stream of insert/delete
// ops, valid or not — and asserts the two properties no input may break:
// the session never panics, and the maintained coloring verifies after
// every single update, whether the update succeeded or was rejected.
// Rejections themselves are legitimate (duplicate inserts, deletes of
// absent edges, palettes below Δ+1): what the fuzzer pins is that a
// rejected update leaves no trace.
//
// This is the dynamic-layer sibling of internal/graph's FuzzRead (both run
// as CI fuzz smoke steps).
func FuzzDynamic(f *testing.F) {
	f.Add([]byte{8, 0, 0, 2, 3, 5, 7})                              // auto palette, a few inserts
	f.Add([]byte{4, 3, 0, 0, 1, 2, 3, 1, 2, 3, 3})                  // tight palette 3, duplicate ops
	f.Add([]byte{12, 5, 3, 0, 1, 2, 1, 4, 3, 1, 2, 6, 5, 8, 7, 10}) // vizing, palette 5
	f.Add([]byte{2, 1, 1, 0, 1, 0, 1, 0, 1})                        // K2 churn at palette 1
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		if len(data) > 512 {
			data = data[:512] // bound a single case's work
		}
		n := 2 + int(data[0])%14
		palette := int(data[1]) % 10 // 0: auto
		algs := []Algorithm{BKO, PR01, GreedyClasses, Vizing}
		alg := algs[int(data[2])%len(algs)]
		d, err := NewDynamic(NewGraph(n), DynamicOptions{Options: Options{
			Algorithm: alg, Palette: palette, Seed: 1,
		}})
		if err != nil {
			// An empty graph colors under every palette ≥ 1; only palette 0
			// (auto) or ≥ 1 reach here, so creation must succeed.
			t.Fatalf("NewDynamic(n=%d, palette=%d, %s): %v", n, palette, alg, err)
		}
		ops := data[3:]
		for i := 0; i+1 < len(ops); i += 2 {
			del := ops[i]&1 == 1
			u := int(ops[i]>>1) % n
			v := int(ops[i+1]) % n
			var opErr error
			if del {
				opErr = d.Delete(u, v)
			} else {
				_, _, opErr = d.Insert(u, v)
			}
			if opErr != nil && !tolerableUpdateError(opErr) {
				t.Fatalf("op %d (%v %d-%d) on n=%d palette=%d %s: unexpected error %v",
					i/2, del, u, v, n, palette, alg, opErr)
			}
			if err := d.Verify(); err != nil {
				t.Fatalf("op %d (%v %d-%d) on n=%d palette=%d %s: coloring corrupted: %v",
					i/2, del, u, v, n, palette, alg, err)
			}
		}
		st := d.Stats()
		if st.Inserts != st.GreedyInserts+st.Repairs+st.Augmentations {
			t.Fatalf("stats do not add up: %+v", st)
		}
	})
}

// tolerableUpdateError reports whether an update error is a legitimate
// rejection of fuzzer-crafted input rather than a defect: self-loops,
// duplicate inserts, deletes of absent/tombstoned edges, and palettes the
// session genuinely cannot serve.
func tolerableUpdateError(err error) bool {
	if errors.Is(err, ErrPaletteExhausted) || errors.Is(err, ErrEdgeInactive) {
		return true
	}
	// Self-loops and duplicate inserts are rejected with input-shaped
	// errors; anything else (solver failures, internal invariants) is not
	// tolerable.
	msg := err.Error()
	return strings.Contains(msg, "self-loop") || strings.Contains(msg, "duplicate edge")
}
