package distec

import (
	"errors"
	"testing"

	"github.com/distec/distec/internal/bench"
)

// benchDynamicGraph is the 10⁵-edge instance of BenchmarkDynamic (recorded
// in BENCH_dynamic.json): RandomRegular(25000, 8) = 100,000 edges.
func benchDynamicGraph() *Graph { return RandomRegular(25000, 8, 1) }

// BenchmarkDynamic compares the cost of one single-edge update on a
// 10⁵-edge graph served three ways:
//
//   - incremental: a Dynamic session with the default auto palette — every
//     update is a locality-bounded overlay operation (greedy insert or
//     color free), never a global pass.
//   - incremental-tight: a Dynamic session pinned to a tight fixed palette
//     (Δ̄+2), so a fraction of inserts goes through the conflict-region
//     repair path (ExtendColoring over the induced subinstance).
//   - full-recolor: the status quo before the dynamic layer — every update
//     to a served network forces ColorEdges over the whole graph.
//
// The acceptance figure is incremental ≥5× faster than full-recolor per
// update.
func BenchmarkDynamic(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		g := benchDynamicGraph()
		d, err := NewDynamic(g, DynamicOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ops := bench.Churn(g, b.N, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := ops[i]
			if op.Delete {
				err = d.Delete(op.U, op.V)
			} else {
				_, _, err = d.Insert(op.U, op.V)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("incremental-tight", func(b *testing.B) {
		g := benchDynamicGraph()
		palette := g.MaxEdgeDegree() + 2
		d, err := NewDynamic(g, DynamicOptions{Options: Options{Palette: palette}})
		if err != nil {
			b.Fatal(err)
		}
		ops := bench.Churn(g, b.N, 7)
		rejected := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := ops[i]
			if op.Delete {
				// The stream simulates its own overlay; an insert the tight
				// palette rejected leaves a later delete dangling. Skip both.
				if err := d.Delete(op.U, op.V); err != nil {
					rejected++
				}
			} else if _, _, err := d.Insert(op.U, op.V); err != nil {
				if !errors.Is(err, ErrPaletteExhausted) {
					b.Fatal(err)
				}
				rejected++
			}
		}
		b.StopTimer()
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
		st := d.Stats()
		b.ReportMetric(float64(st.Repairs), "repairs")
		b.ReportMetric(float64(rejected), "rejected")
	})
	b.Run("full-recolor", func(b *testing.B) {
		g := benchDynamicGraph()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// One update = one full recolor of the served network, the
			// pre-dynamic behavior this layer replaces.
			if _, err := ColorEdges(g, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
