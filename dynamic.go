package distec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/distec/distec/internal/dynamic"
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/persist"
	"github.com/distec/distec/internal/trace"
)

// ErrPaletteExhausted marks dynamic inserts rejected because the session's
// fixed palette cannot accommodate the new edge: no target-color repair of
// its conflict region succeeded and the Vizing augmentation fallback found
// no free color either (via errors.Is). By Vizing's theorem this is only
// reachable for palettes strictly below Δ+1. The maintained coloring is
// unchanged.
var ErrPaletteExhausted = dynamic.ErrPaletteExhausted

// ErrEdgeInactive marks deletes of an edge that is not active — already
// deleted (a double delete) or never inserted (via errors.Is). The
// maintained coloring is unchanged; in particular a double delete can never
// free a color twice.
var ErrEdgeInactive = dynamic.ErrEdgeInactive

// ErrSessionClosed marks updates against a Dynamic session after Close (via
// errors.Is): late batches fail before touching the coloring, and a batch
// in flight when Close lands fails at its next update boundary, leaving the
// applied prefix in place but journaling nothing — a closed session is
// never mutated further, and never journaled.
var ErrSessionClosed = errors.New("distec: dynamic session closed")

// ErrSessionPassivated marks updates against a Dynamic session after
// Passivate (via errors.Is). It carries the same guarantees as
// ErrSessionClosed — the session is never mutated or journaled after the
// mark lands — but tells the caller the durable state is intact and the
// session can be rehydrated from it: a registry that passivated the session
// to bound its resident set re-resolves the session and retries the batch,
// making passivation invisible to clients. Nothing from a
// passivation-interrupted batch is journaled, so the retry on the
// rehydrated session replays the whole batch exactly once.
var ErrSessionPassivated = errors.New("distec: dynamic session passivated")

// ErrJournal marks ApplyBatch errors from the journal hook (via errors.Is):
// the batch WAS applied to the in-memory coloring — the results are exact —
// but durability is broken, since the journal did not record it. Callers
// holding the session as a system of record should stop serving it.
var ErrJournal = errors.New("distec: session journal write failed")

// DynamicStats counts a dynamic session's update traffic; see NewDynamic.
type DynamicStats = dynamic.Stats

// UpdateOp selects the kind of one edge update.
type UpdateOp string

const (
	// InsertEdge adds the active edge {U, V} and colors it.
	InsertEdge UpdateOp = "insert"
	// DeleteEdge removes the active edge {U, V} and frees its color.
	DeleteEdge UpdateOp = "delete"
)

// Update is one edge update of a batch stream.
type Update struct {
	Op UpdateOp `json:"op"`
	U  int      `json:"u"`
	V  int      `json:"v"`
}

// UpdateResult reports one applied update: the edge's ID, its color after
// the update (−1 for deletes), and which tier served an insert — a free
// palette color (both false), a conflict-region repair (Repaired), or the
// Vizing fan/alternating-path augmentation fallback (Augmented).
type UpdateResult struct {
	Edge      EdgeID `json:"edge"`
	Color     int    `json:"color"`
	Repaired  bool   `json:"repaired"`
	Augmented bool   `json:"augmented"`
}

// DynamicOptions configures NewDynamic.
type DynamicOptions struct {
	// Options selects the algorithm (and, for one-shot sessions, the
	// engine) used for the initial coloring and for every conflict-region
	// repair. Options.Palette fixes the session palette: repairs keep every
	// color below it and infeasible inserts fail with ErrPaletteExhausted.
	// Palette 0 selects the auto palette, grown as inserts raise Δ: 2Δ−1,
	// under which every insert is served greedily — or Δ+1 for Algorithm
	// Vizing, matching its static default, under which inserts are served
	// by the greedy → repair → augmentation ladder and still never
	// rejected.
	Options
	// Pool, when set, runs the initial coloring and every update batch as
	// jobs on the pool's shared worker lanes: a session's repairs
	// interleave with other tenants' jobs round by round, and batch
	// contexts carry cancellation and deadlines into the repair solvers.
	// Options.Engine and Options.Shards are ignored in pool mode (the pool
	// routes executions itself).
	Pool *Pool
}

// Dynamic maintains a proper edge coloring of a graph across edge inserts
// and deletes with locality-bounded repair — the paper's motivating use of
// (deg(e)+1)-list edge coloring as the tool for extending a partial
// coloring, applied incrementally. Deletes free their color; inserts take a
// free palette color when one exists at both endpoints and otherwise
// recolor only the edges inside the conflict region, by running the
// configured algorithm as an ExtendColoring over the induced subinstance.
// Inserts that no target-color repair can serve fall back to one Vizing
// fan/alternating-path augmentation, which succeeds for every palette of at
// least Δ+1 colors — ErrPaletteExhausted is only reachable below Δ+1 (see
// internal/dynamic for the exact repair contract).
//
// A Dynamic is safe for concurrent use; updates are serialized in arrival
// order. Create with NewDynamic.
type Dynamic struct {
	mu   sync.Mutex
	c    *dynamic.Coloring
	opts Options
	pool *Pool
	// engine is the one-shot repair engine (nil in pool mode); cur/curCtx
	// bind repairs to the engine and context of the batch being applied.
	// curCtx is set and cleared under mu strictly within one ApplyBatch, so
	// it never outlives the call that supplied it — it exists only because
	// the repair callbacks have no parameter to carry it.
	engine local.Engine
	cur    local.Engine
	//distec:nolint ctxflow
	curCtx context.Context
	// seq counts applied batches (guarded by mu); journal, when set,
	// receives each one (snapFn is the pre-bound snapshot capture, so the
	// per-batch JournalBatch costs no closure allocation). state is read
	// inside the update loop so an in-flight batch observes Close or
	// Passivate at its next update boundary.
	seq     uint64
	journal JournalFunc
	snapFn  func(io.Writer) error
	state   atomic.Int32
}

// Dynamic lifecycle states (Dynamic.state). Both terminal states suppress
// further mutation and journaling; they differ only in what they promise
// the caller — closed means gone, passivated means rehydratable.
const (
	sessionOpen int32 = iota
	sessionClosed
	sessionPassivated
)

// stopErr maps a terminal state to its sentinel.
func stopErr(state int32) error {
	if state == sessionPassivated {
		return ErrSessionPassivated
	}
	return ErrSessionClosed
}

// JournalFunc receives every applied update batch of a Dynamic session; see
// Dynamic.SetJournal.
type JournalFunc func(b JournalBatch) error

// JournalBatch is one applied batch as handed to a session's journal.
type JournalBatch struct {
	// Seq is the batch's 1-based position in the session's applied-batch
	// sequence; it is contiguous, so a journal replayed in order reproduces
	// the session exactly.
	Seq uint64
	// Applied holds exactly the updates that took effect — the whole batch
	// on success, the applied prefix when the batch failed midway. Valid
	// only during the journal call.
	Applied []Update
	// Snapshot writes a point-in-time snapshot of the session consistent
	// with Seq (the state with exactly the first Seq batches applied).
	// Valid only during the journal call; it must not call back into the
	// session (the session lock is held).
	Snapshot func(w io.Writer) error
}

// NewDynamic computes an initial coloring of g and wraps it for incremental
// maintenance under edge updates. The graph is owned by the session
// afterwards: it must not be mutated or colored elsewhere while the session
// lives.
func NewDynamic(g *Graph, opts DynamicOptions) (*Dynamic, error) {
	var (
		res *Result
		err error
	)
	if opts.Pool != nil {
		res, err = opts.Pool.ColorEdges(context.Background(), g, opts.Options)
	} else {
		res, err = ColorEdges(g, opts.Options)
	}
	if err != nil {
		return nil, fmt.Errorf("distec: dynamic initial coloring: %w", err)
	}
	return NewDynamicFrom(g, res.Colors, opts)
}

// NewDynamicFrom wraps an existing proper coloring of g — computed earlier,
// loaded from storage, or colored under a caller-bounded context — for
// incremental maintenance. colors must properly color every edge of g and,
// under a fixed Options.Palette, stay below it; it is validated once and
// copied.
func NewDynamicFrom(g *Graph, colors []int, opts DynamicOptions) (*Dynamic, error) {
	d := &Dynamic{opts: opts.Options, pool: opts.Pool}
	var err error
	if d.pool == nil {
		d.engine, err = opts.Options.engine()
		if err != nil {
			return nil, err
		}
	}
	d.c, err = dynamic.New(g, colors, dynamic.Options{
		Palette: opts.Palette,
		// A Vizing session's auto palette tracks Δ+1, matching the
		// algorithm's static default — not the 2Δ−1 the other algorithms
		// auto-select — so picking the Δ+1 algorithm actually yields a Δ+1
		// session. The palette grows with Δ, so inserts are still never
		// rejected.
		AutoDeltaPlusOne: opts.Algorithm == Vizing,
		Repair:           d.repairSubinstance,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// repairSubinstance is the session's dynamic.Repairer: solve one conflict-
// region subinstance with the session's algorithm on the engine of the
// batch being applied. Called with d.mu held (updates are serialized).
func (d *Dynamic) repairSubinstance(sub *graph.Graph, partial []int, lists [][]int, palette int) ([]int, error) {
	if err := d.curCtx.Err(); err != nil {
		return nil, err
	}
	res, err := extendOn(sub, partial, lists, palette, d.opts, d.cur)
	if err != nil {
		return nil, err
	}
	return res.Colors, nil
}

// Insert adds the active edge {u, v} and colors it, returning its EdgeID
// and color. See ApplyBatch for the update semantics.
func (d *Dynamic) Insert(u, v int) (EdgeID, int, error) {
	rs, err := d.ApplyBatch(context.Background(), []Update{{Op: InsertEdge, U: u, V: v}})
	if err != nil {
		return -1, -1, err
	}
	return rs[0].Edge, rs[0].Color, nil
}

// Delete removes the active edge {u, v} and frees its color.
func (d *Dynamic) Delete(u, v int) error {
	_, err := d.ApplyBatch(context.Background(), []Update{{Op: DeleteEdge, U: u, V: v}})
	return err
}

// ApplyBatch applies a stream of updates in order, maintaining a proper
// coloring after every one, and reports each update's outcome.
//
// Partial-failure contract: ApplyBatch stops at the first failing update
// and returns the results of the applied prefix alongside the error — the
// coloring reflects exactly len(results) updates, no more and no fewer, so
// a caller (or a write-ahead log) can always reconstruct precisely what
// took effect. An admission-level failure (pool closed, ctx done before a
// worker lane freed, session already closed) returns nil results: nothing
// was applied. The session journal, if set, receives exactly the applied
// prefix (see SetJournal) — except after Close, which suppresses both
// further mutation and journaling.
//
// On a pool-backed session the whole batch runs as one job on the pool's
// shared lanes (admission control, metrics, and ctx cancellation included);
// one-shot sessions run it inline on the session engine. ctx bounds the
// batch either way.
func (d *Dynamic) ApplyBatch(ctx context.Context, updates []Update) ([]UpdateResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st := d.state.Load(); st != sessionOpen {
		return nil, stopErr(st)
	}
	var (
		results []UpdateResult
		apErr   error
	)
	if d.pool == nil {
		results, apErr = d.applyLocked(ctx, d.engine, updates)
	} else {
		err := d.pool.p.Do(ctx, func(eng local.Engine) error {
			results, apErr = d.applyLocked(ctx, eng, updates)
			return apErr
		})
		if err != nil && apErr == nil {
			// Admission-level failure (pool closed, ctx done before a slot
			// freed): nothing was applied.
			return nil, err
		}
	}
	if len(results) > 0 && !errors.Is(apErr, ErrSessionClosed) && !errors.Is(apErr, ErrSessionPassivated) {
		d.seq++
		if d.journal != nil {
			// The journal hook runs under d.mu by documented contract: the
			// session lock is what serializes journal records with the state
			// they describe, so replay order equals apply order. Durability
			// latency under the lock is the price of that equivalence.
			//distec:nolint lockio
			if jerr := d.journal(JournalBatch{
				Seq:      d.seq,
				Applied:  updates[:len(results)],
				Snapshot: d.snapFn,
			}); jerr != nil {
				apErr = errors.Join(apErr, fmt.Errorf("%w: batch %d: %w", ErrJournal, d.seq, jerr))
			}
		}
	}
	return results, apErr
}

// applyLocked applies the batch with repairs bound to the given engine and
// context. Caller holds d.mu.
func (d *Dynamic) applyLocked(ctx context.Context, eng local.Engine, updates []Update) ([]UpdateResult, error) {
	// Session updates have no per-call Options, so a tracer arrives on the
	// context (?trace=1 on the daemon's update endpoint plants it there):
	// wrapping the batch engine makes every repair execution in this batch
	// report to it. FromContext is nil without a tracer and Traced then
	// returns eng unchanged.
	tr := trace.FromContext(ctx)
	tr.SetLabel("repair")
	d.cur, d.curCtx = local.Traced(eng, tr), ctx
	defer func() { d.cur, d.curCtx = nil, nil }()
	results := make([]UpdateResult, 0, len(updates))
	for i, up := range updates {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		if st := d.state.Load(); st != sessionOpen {
			// Close or Passivate landed while this batch was in flight: stop
			// at the update boundary. The applied prefix stays (results are
			// exact) but the caller will neither journal nor continue it —
			// for a passivation that means the prefix dies with the resident
			// state and a retry replays the batch from scratch.
			return results, fmt.Errorf("update %d: %w", i, stopErr(st))
		}
		switch up.Op {
		case InsertEdge:
			beforeRepairs, beforeAugments := d.c.Repairs(), d.c.Augments()
			id, col, err := d.c.Insert(up.U, up.V)
			if err != nil {
				return results, fmt.Errorf("update %d: %w", i, err)
			}
			results = append(results, UpdateResult{
				Edge:      id,
				Color:     col,
				Repaired:  d.c.Repairs() > beforeRepairs,
				Augmented: d.c.Augments() > beforeAugments,
			})
		case DeleteEdge:
			id, _ := d.c.Graph().HasEdge(up.U, up.V)
			if err := d.c.Delete(up.U, up.V); err != nil {
				return results, fmt.Errorf("update %d: %w", i, err)
			}
			results = append(results, UpdateResult{Edge: id, Color: -1})
		default:
			return results, fmt.Errorf("update %d: unknown op %q", i, up.Op)
		}
	}
	return results, nil
}

// Colors returns a fresh copy of the maintained coloring by EdgeID, −1 for
// deleted (tombstoned) edges.
func (d *Dynamic) Colors() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.c.Colors()
}

// Color returns edge e's current color, −1 if deleted.
func (d *Dynamic) Color(e EdgeID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.c.Color(e)
}

// Edges returns the total number of edges the session's graph holds,
// tombstoned (deleted) edges included — the session's memory footprint is
// proportional to it, since the underlying graph is append-only.
func (d *Dynamic) Edges() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.c.Graph().M()
}

// Palette returns the session's current palette size.
func (d *Dynamic) Palette() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.c.Palette()
}

// Stats returns a snapshot of the session's update counters.
func (d *Dynamic) Stats() DynamicStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.c.Stats()
}

// Verify checks that the maintained coloring is proper over the live edges
// and stays inside the palette — the independent validator used by tests
// and the daemon.
func (d *Dynamic) Verify() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.c.Verify()
}

// Seq returns the number of update batches applied so far — the sequence
// number of the session's last applied batch, matching the Seq the journal
// saw for it (batches count whether or not a journal is set).
func (d *Dynamic) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// SetJournal installs fn as the session's journal: after every applied
// batch — including the applied prefix of a batch that failed midway — fn
// is called under the session lock with the batch's sequence number, the
// updates that took effect, and a point-in-time snapshot writer. A journal
// error surfaces from ApplyBatch wrapped in ErrJournal; the in-memory
// coloring keeps the batch either way. Install the journal before serving
// updates (typically right after NewDynamic or after replaying a recovered
// WAL); a nil fn removes it.
func (d *Dynamic) SetJournal(fn JournalFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.journal = fn
	if d.snapFn == nil {
		d.snapFn = d.snapshotLocked
	}
}

// Close marks the session closed: late batches fail immediately with
// ErrSessionClosed and a batch in flight fails at its next update boundary,
// without journaling. Close returns once no update is running, so a caller
// that dropped the session (deleted, evicted) knows the coloring and its
// journal are quiescent. Read accessors (Colors, Stats, Verify, Snapshot)
// keep working. Idempotent.
func (d *Dynamic) Close() error {
	d.state.Store(sessionClosed)
	d.mu.Lock()
	defer d.mu.Unlock()
	return nil
}

// Passivate marks the session passivated: the in-memory instance stops
// accepting updates exactly like Close — late batches fail immediately, a
// batch in flight fails at its next update boundary without journaling —
// but the failure is ErrSessionPassivated, telling callers the session's
// durable state is intact and a fresh instance can be rehydrated from it
// (NewDynamicFromState plus ReplayRecords). Passivate returns once no
// update is running, so the caller knows the journal is quiescent and the
// log can be closed. Read accessors keep working on the passivated
// instance. A closed session stays closed.
func (d *Dynamic) Passivate() error {
	d.state.CompareAndSwap(sessionOpen, sessionPassivated)
	d.mu.Lock()
	defer d.mu.Unlock()
	return nil
}

// Snapshot writes a point-in-time snapshot of the session — graph
// (tombstones included, preserving EdgeIDs), active-edge overlay, coloring,
// palette/algorithm/seed header, and the applied-batch sequence number —
// in the checksummed binary format NewDynamicFromSnapshot reads.
func (d *Dynamic) Snapshot(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Snapshot consistency requires serializing under mu: the encoder must
	// observe a coloring no update is mutating, so the writer's latency is
	// deliberately inside the lock.
	//distec:nolint lockio
	return d.snapshotLocked(w)
}

// snapshotLocked encodes the session state; caller holds d.mu (it is also
// the JournalBatch.Snapshot capture, invoked from inside ApplyBatch).
func (d *Dynamic) snapshotLocked(w io.Writer) error {
	g := d.c.Graph()
	m := g.M()
	snap := &persist.Snapshot{
		Algorithm:     string(d.opts.Algorithm),
		Seed:          d.opts.Seed,
		ConfigPalette: d.opts.Palette,
		LivePalette:   d.c.Palette(),
		Seq:           d.seq,
		N:             g.N(),
		EdgeU:         make([]int32, m),
		EdgeV:         make([]int32, m),
		Active:        d.c.Active(),
		Colors:        make([]int32, m),
	}
	for e, ed := range g.Edges() {
		snap.EdgeU[e], snap.EdgeV[e] = ed.U, ed.V
	}
	for e, col := range d.c.Colors() {
		snap.Colors[e] = int32(col)
	}
	return persist.WriteSnapshot(w, snap)
}

// NewDynamicFromSnapshot restores a session from a Snapshot stream: the
// graph, overlay, coloring, and applied-batch sequence number come from the
// snapshot, as do the session options (algorithm, palette, seed) — opts
// contributes only the execution choices (Pool, or Engine/Shards for a
// one-shot session). The restored coloring is validated like NewDynamicFrom
// validates a fresh one. To finish a crash recovery, replay the session's
// write-ahead log records beyond the snapshot's sequence number through
// ApplyBatch, in order, before installing a journal.
func NewDynamicFromSnapshot(r io.Reader, opts DynamicOptions) (*Dynamic, error) {
	snap, err := persist.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return NewDynamicFromState(snap, opts)
}

// NewDynamicFromState is NewDynamicFromSnapshot for an already-parsed
// snapshot — the state OpenLog or ScanDir hands back with the
// differential-snapshot chain merged, or the one a replication stream
// carries. Like ReplayRecords, the parameter type lives in an internal
// package, making this module plumbing; external callers restore from the
// encoded stream.
func NewDynamicFromState(snap *persist.Snapshot, opts DynamicOptions) (*Dynamic, error) {
	var err error
	switch Algorithm(snap.Algorithm) {
	case "", BKO, BKOTheory, PR01, GreedyClasses, Randomized, Vizing:
	default:
		return nil, fmt.Errorf("distec: snapshot names unknown algorithm %q", snap.Algorithm)
	}
	g := NewGraph(snap.N)
	for e := range snap.EdgeU {
		if _, err := g.AddEdge(int(snap.EdgeU[e]), int(snap.EdgeV[e])); err != nil {
			return nil, fmt.Errorf("distec: snapshot edge %d: %w", e, err)
		}
	}
	o := opts.Options
	o.Algorithm = Algorithm(snap.Algorithm)
	o.Palette = snap.ConfigPalette
	o.Seed = snap.Seed
	d := &Dynamic{opts: o, pool: opts.Pool, seq: snap.Seq}
	if d.pool == nil {
		if d.engine, err = o.engine(); err != nil {
			return nil, err
		}
	}
	colors := make([]int, len(snap.Colors))
	for e, col := range snap.Colors {
		colors[e] = int(col)
	}
	d.c, err = dynamic.Restore(g, snap.Active, colors, snap.LivePalette, dynamic.Options{
		Palette:          o.Palette,
		AutoDeltaPlusOne: o.Algorithm == Vizing,
		Repair:           d.repairSubinstance,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// ReplayRecords applies recovered write-ahead-log records to a restored
// session in order — the shared replay step behind edgecolord's boot
// recovery and sessionctl's offline verification, kept in one place so the
// op mapping cannot diverge between them. The record type lives in an
// internal package, making this module plumbing; external callers drive
// ApplyBatch directly.
func ReplayRecords(ctx context.Context, d *Dynamic, records []persist.Record) error {
	for _, rec := range records {
		updates := make([]Update, len(rec.Updates))
		for i, up := range rec.Updates {
			op := InsertEdge
			if up.Op == persist.OpDelete {
				op = DeleteEdge
			}
			updates[i] = Update{Op: op, U: int(up.U), V: int(up.V)}
		}
		if _, err := d.ApplyBatch(ctx, updates); err != nil {
			return fmt.Errorf("distec: replay batch %d: %w", rec.Seq, err)
		}
	}
	return nil
}
