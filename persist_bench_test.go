package distec

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/distec/distec/internal/bench"
	"github.com/distec/distec/internal/persist"
)

// journalOn wires a session to a persist.Log exactly as the daemon does:
// every applied batch becomes one WAL record.
func journalOn(b *testing.B, d *Dynamic, dir string, opts persist.Options) *persist.Log {
	b.Helper()
	lg, err := persist.CreateLog(dir, d.Snapshot, opts)
	if err != nil {
		b.Fatal(err)
	}
	var scratch []persist.Update
	d.SetJournal(func(jb JournalBatch) error {
		if cap(scratch) < len(jb.Applied) {
			scratch = make([]persist.Update, len(jb.Applied))
		}
		rec := persist.Record{Seq: jb.Seq, Updates: scratch[:len(jb.Applied)]}
		for i, up := range jb.Applied {
			op := persist.OpInsert
			if up.Op == DeleteEdge {
				op = persist.OpDelete
			}
			rec.Updates[i] = persist.Update{Op: op, U: int32(up.U), V: int32(up.V)}
		}
		return lg.Append(rec)
	})
	return lg
}

// BenchmarkPersist measures what durability costs the dynamic layer — the
// BENCH_persist.json experiment:
//
//   - churn/*: µs per single-edge update on the 10⁵-edge auto-palette
//     session of BenchmarkDynamic, with journaling off, on (fsync-less fast
//     mode: one kernel write per batch), and fully fsynced. The acceptance
//     figure is journal-on within 2× of journal-off in fsync-less mode.
//     Compaction is disabled here so the numbers isolate the append path;
//     its cost has its own benchmark below.
//   - recovery/*: full crash recovery (OpenLog with tail repair +
//     snapshot restore + WAL replay) against WAL length.
//   - compact: one compaction of the 10⁵-edge session — the in-memory
//     snapshot capture under the session lock plus the synchronous disk
//     work the daemon normally backgrounds.
//   - snapshot-encode: the capture alone (what an update batch pays extra
//     when it trips the compaction threshold).
func BenchmarkPersist(b *testing.B) {
	noCompact := persist.Options{CompactBytes: 1 << 40}
	churn := func(b *testing.B, journaled bool, opts persist.Options) {
		g := benchDynamicGraph()
		d, err := NewDynamic(g, DynamicOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if journaled {
			lg := journalOn(b, d, filepath.Join(b.TempDir(), "sess"), opts)
			defer lg.Close()
		}
		ops := bench.Churn(g, b.N, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := ops[i]
			if op.Delete {
				err = d.Delete(op.U, op.V)
			} else {
				_, _, err = d.Insert(op.U, op.V)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("churn/journal-off", func(b *testing.B) { churn(b, false, persist.Options{}) })
	b.Run("churn/journal-on", func(b *testing.B) { churn(b, true, noCompact) })
	b.Run("churn/journal-fsync", func(b *testing.B) {
		churn(b, true, persist.Options{Fsync: true, CompactBytes: 1 << 40})
	})

	for _, walLen := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("recovery/wal-%d", walLen), func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "sess")
			g := benchDynamicGraph()
			d, err := NewDynamic(g, DynamicOptions{})
			if err != nil {
				b.Fatal(err)
			}
			lg := journalOn(b, d, dir, noCompact)
			ops := bench.Churn(g, walLen, 7)
			for _, op := range ops {
				if op.Delete {
					err = d.Delete(op.U, op.V)
				} else {
					_, _, err = d.Insert(op.U, op.V)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := lg.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lg, _, records, err := persist.OpenLog(dir, persist.Options{})
				if err != nil {
					b.Fatal(err)
				}
				f, err := os.Open(filepath.Join(dir, persist.SnapshotFile))
				if err != nil {
					b.Fatal(err)
				}
				r, err := NewDynamicFromSnapshot(f, DynamicOptions{})
				f.Close()
				if err != nil {
					b.Fatal(err)
				}
				if err := ReplayRecords(context.Background(), r, records); err != nil {
					b.Fatal(err)
				}
				if r.Seq() != uint64(walLen) {
					b.Fatalf("recovered to seq %d, want %d", r.Seq(), walLen)
				}
				lg.Close()
			}
		})
	}

	b.Run("compact", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "sess")
		g := benchDynamicGraph()
		d, err := NewDynamic(g, DynamicOptions{})
		if err != nil {
			b.Fatal(err)
		}
		lg := journalOn(b, d, dir, noCompact)
		defer lg.Close()
		if _, _, err := d.Insert(absentPair(g)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := d.Snapshot(&buf); err != nil {
				b.Fatal(err)
			}
			if err := lg.Compact(buf.Bytes()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("snapshot-encode", func(b *testing.B) {
		g := benchDynamicGraph()
		d, err := NewDynamic(g, DynamicOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.Snapshot(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPassivation measures the passivation economy — the
// BENCH_persist.json "passivation" section:
//
//   - rehydrate/*: the full price of touching a passivated session (what
//     the daemon's acquire pays on a miss): OpenLog with the diff chain
//     merged, coloring restore, WAL replay, and the independent Verify,
//     against the replay length left after compaction.
//   - compact-full vs compact-diff: the same small-delta compaction served
//     by a full snapshot rewrite and by an appended differential snapshot,
//     with the bytes each one writes reported alongside the time.
func BenchmarkPassivation(b *testing.B) {
	for _, walLen := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rehydrate/wal-%d", walLen), func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "sess")
			g := benchDynamicGraph()
			d, err := NewDynamic(g, DynamicOptions{})
			if err != nil {
				b.Fatal(err)
			}
			lg := journalOn(b, d, dir, persist.Options{CompactBytes: 1 << 40})
			for _, op := range bench.Churn(g, walLen, 7) {
				if op.Delete {
					err = d.Delete(op.U, op.V)
				} else {
					_, _, err = d.Insert(op.U, op.V)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := lg.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lg, snap, records, err := persist.OpenLog(dir, persist.Options{})
				if err != nil {
					b.Fatal(err)
				}
				r, err := NewDynamicFromState(snap, DynamicOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if err := ReplayRecords(context.Background(), r, records); err != nil {
					b.Fatal(err)
				}
				if err := r.Verify(); err != nil {
					b.Fatal(err)
				}
				lg.Close()
			}
		})
	}

	smallDeltaCompact := func(b *testing.B, diff bool, watch string) {
		dir := filepath.Join(b.TempDir(), "sess")
		g := benchDynamicGraph()
		d, err := NewDynamic(g, DynamicOptions{})
		if err != nil {
			b.Fatal(err)
		}
		lg := journalOn(b, d, dir, persist.Options{CompactBytes: 1 << 40, DiffCompact: diff})
		defer lg.Close()
		ops := bench.Churn(g, 4*b.N+4, 13)
		fileSize := func(name string) int64 {
			fi, err := os.Stat(filepath.Join(dir, name))
			if err != nil {
				return 0
			}
			return fi.Size()
		}
		b.ResetTimer()
		var written int64
		for i := 0; i < b.N; i++ {
			// A four-update delta since the last compaction: the regime the
			// differential path exists for.
			for k := 0; k < 4; k++ {
				op := ops[4*i+k]
				if op.Delete {
					err = d.Delete(op.U, op.V)
				} else {
					_, _, err = d.Insert(op.U, op.V)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := d.Snapshot(&buf); err != nil {
				b.Fatal(err)
			}
			before := fileSize(watch)
			if err := lg.Compact(buf.Bytes()); err != nil {
				b.Fatal(err)
			}
			if !diff {
				written += fileSize(watch) // the full path rewrites the file
			} else if after := fileSize(watch); after >= before {
				written += after - before // the diff path appends
			} else {
				// The diff file shrank: this compaction fell back to a full
				// snapshot rewrite (the chain had grown past the point where
				// appending beats rewriting) and cleared the chain.
				written += fileSize(persist.SnapshotFile)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(written)/float64(b.N), "disk-bytes/op")
	}
	b.Run("compact-full", func(b *testing.B) { smallDeltaCompact(b, false, persist.SnapshotFile) })
	b.Run("compact-diff", func(b *testing.B) { smallDeltaCompact(b, true, persist.DiffFile) })
}

// absentPair returns one node pair that is not an edge of g.
func absentPair(g *Graph) (int, int) {
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if _, ok := g.HasEdge(u, v); !ok {
				return u, v
			}
		}
	}
	panic("complete graph")
}
