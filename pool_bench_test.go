package distec

import (
	"context"
	"sync"
	"testing"
)

// poolBenchRequest is one request of the serving stream BenchmarkPool
// replays.
type poolBenchRequest struct {
	g   *Graph
	alg Algorithm
}

// poolBenchGraphs builds the graph universe of the benchmark: six distinct
// mixed-size graphs plus two extras used by the all-distinct variant.
func poolBenchGraphs() []*Graph {
	return []*Graph{
		RandomRegular(80, 6, 1),  // 0: 240 edges
		RandomRegular(100, 6, 2), // 1: 300 edges
		RandomRegular(300, 8, 3), // 2: 1200 edges
		Cycle(30000),             // 3: 30k edges, sparse
		Cycle(30000),             // 4: 30k edges, sparse (distinct instance)
		RandomTree(60000, 6),     // 5: 60k edges, large
		RandomTree(60000, 7),     // 6: all-distinct stand-in for the repeat of 5
		Cycle(30000),             // 7: all-distinct stand-in for the repeat of 3
	}
}

// poolBenchEpoch is the K=8 concurrent batch of one serving epoch: six
// distinct mixed-size requests plus two repeats of the heavier ones — the
// serving phenomenon the pool's single-flight cache exists for (the same
// fabric recolored for the same epoch by several consumers, or idempotent
// request retries). The repeat fraction is 2/8 = 25%. With repeats=false
// the two repeats are replaced by distinct graphs of the same size, which
// isolates the engine-routing advantage from the caching advantage.
// Requests carry the epoch as their Seed, so nothing repeats ACROSS epochs:
// within an epoch the pool may deduplicate, across epochs it must
// recompute, exactly like the independent-engine baseline.
func poolBenchEpoch(graphs []*Graph, repeats bool) []poolBenchRequest {
	seven, eight := graphs[5], graphs[3] // the in-epoch repeats
	if !repeats {
		seven, eight = graphs[6], graphs[7]
	}
	return []poolBenchRequest{
		{graphs[0], BKO},
		{graphs[1], PR01},
		{graphs[2], Randomized},
		{graphs[3], Randomized},
		{graphs[4], GreedyClasses},
		{graphs[5], Randomized},
		{seven, Randomized},
		{eight, Randomized},
	}
}

// BenchmarkPool is the serving-layer headline benchmark (recorded in
// BENCH_pool.json): K=8 concurrent mixed-size jobs per epoch, as one shared
// Pool versus K independent sharded engines — the status quo before the
// serving layer, where every call spins up its own worker pool and nothing
// is shared between requests, so the baseline recomputes repeated requests
// too. The *-all-distinct variants replay the same stream with the repeats
// swapped for fresh graphs, so both advantages are recorded separately.
func BenchmarkPool(b *testing.B) {
	graphs := poolBenchGraphs()
	run := func(b *testing.B, repeats bool, color func(req poolBenchRequest, epoch uint64) (*Result, error)) {
		b.Helper()
		reqs := poolBenchEpoch(graphs, repeats)
		for n := 0; n < b.N; n++ {
			epoch := uint64(n + 1)
			var wg sync.WaitGroup
			errs := make([]error, len(reqs))
			for i := range reqs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := color(reqs[i], epoch)
					if err == nil && res.Colors[0] < 0 {
						panic("uncolored edge")
					}
					errs[i] = err
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					b.Fatalf("job %d: %v", i, err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs)*b.N)/b.Elapsed().Seconds(), "jobs/s")
	}

	oneShot := func(req poolBenchRequest, epoch uint64) (*Result, error) {
		return ColorEdges(req.g, Options{Algorithm: req.alg, Engine: Sharded, Seed: epoch})
	}
	for _, variant := range []struct {
		name    string
		repeats bool
	}{
		{"stream", true},
		{"all-distinct", false},
	} {
		b.Run("independent-sharded/"+variant.name, func(b *testing.B) {
			run(b, variant.repeats, oneShot)
		})
		b.Run("pool/"+variant.name, func(b *testing.B) {
			pool := NewPool(PoolOptions{})
			defer pool.Close()
			ctx := context.Background()
			b.ResetTimer()
			run(b, variant.repeats, func(req poolBenchRequest, epoch uint64) (*Result, error) {
				return pool.ColorEdges(ctx, req.g, Options{Algorithm: req.alg, Seed: epoch})
			})
		})
	}
}
