package distec

import (
	"container/list"
	"context"
	"encoding/binary"
	"hash/maphash"
	"sync"
)

// poolCache is the serving pool's result cache: repeated identical requests
// — the same graph colored with the same options, as produced by epochal
// recoloring of a fixed network or retried idempotent requests — are served
// from memory, and identical requests that arrive while the first is still
// computing wait for that one computation instead of repeating it
// (single-flight). Deterministic algorithms (every Algorithm here, with
// Randomized keyed by its seed) make this semantically invisible: the
// cached result is bit-identical to recomputing.
//
// Keys are 64-bit maphashes of (n, edge list, algorithm, palette, seed)
// under a per-pool random seed, so key collisions cannot be crafted from
// outside and are vanishingly unlikely (≤ cap entries against a 64-bit
// space). Only uniform ColorEdges requests are cached: list and extension
// requests would need their full lists hashed, which rarely repeat.
type poolCache struct {
	seed maphash.Seed
	cap  int

	mu    sync.Mutex
	byKey map[uint64]*cacheEntry
	lru   *list.List // ready entries only; front = most recent
}

// cacheEntry is one keyed computation: pending until ready is closed, then
// holding the result (or nil if the computation failed and was dropped).
type cacheEntry struct {
	key   uint64
	ready chan struct{}
	res   *Result
	elem  *list.Element
}

func newPoolCache(capacity int) *poolCache {
	return &poolCache{
		seed:  maphash.MakeSeed(),
		cap:   capacity,
		byKey: make(map[uint64]*cacheEntry),
		lru:   list.New(),
	}
}

// key fingerprints a uniform ColorEdges request. Equivalent requests must
// map to the same key, or epochal recoloring traffic misses the cache: the
// palette is resolved to its effective value (0 and an explicit 2Δ−1 are
// the same request), the seed is dropped for every algorithm but Randomized
// (the only one that reads it), and the defaulted algorithm name is
// resolved to BKO.
func (c *poolCache) key(g *Graph, opts Options) uint64 {
	if opts.Algorithm == "" {
		opts.Algorithm = BKO
	}
	// Resolve after the algorithm: the palette default is per-algorithm
	// (2Δ−1, but Δ+1 for Vizing).
	opts.Palette = effectivePaletteFor(g, opts.Algorithm, opts.Palette)
	if opts.Algorithm != Randomized {
		opts.Seed = 0
	}
	var h maphash.Hash
	h.SetSeed(c.seed)
	buf := make([]byte, 0, 1<<12)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	put := func(x uint64) {
		buf = binary.LittleEndian.AppendUint64(buf, x)
		if len(buf) >= 1<<12 {
			flush()
		}
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	for _, e := range g.Edges() {
		put(uint64(uint32(e.U))<<32 | uint64(uint32(e.V)))
	}
	put(uint64(opts.Palette))
	put(opts.Seed)
	flush()
	h.WriteString(string(opts.Algorithm))
	return h.Sum64()
}

// lookup returns (entry, owner, pending): a non-nil entry the caller
// should read — waiting for ready if necessary — or owner=true, in which
// case the caller owns the (newly inserted, pending) entry and must call
// fill exactly once. pending reports whether a found entry was still being
// computed at lookup time (a single-flight coalesce rather than a ready
// hit); it is decided under the cache lock, where e.elem is stable.
func (c *poolCache) lookup(key uint64) (e *cacheEntry, owner, pending bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[key]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e, false, e.elem == nil
	}
	e = &cacheEntry{key: key, ready: make(chan struct{})}
	c.byKey[key] = e
	return e, true, false
}

// len reports the number of ready entries (the LRU holds only those).
func (c *poolCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// fill completes the owner's pending entry. Failed computations are dropped
// (the error is not cached); successful ones enter the LRU, evicting the
// oldest ready entry beyond capacity. The stored result is a private clone.
func (c *poolCache) fill(e *cacheEntry, res *Result, err error) {
	c.mu.Lock()
	if err != nil {
		delete(c.byKey, e.key)
	} else {
		e.res = cloneResult(res)
		e.elem = c.lru.PushFront(e)
		if c.lru.Len() > c.cap {
			old := c.lru.Remove(c.lru.Back()).(*cacheEntry)
			delete(c.byKey, old.key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
}

// wait blocks until the entry is ready (or ctx is done) and returns a copy
// of its result; ok=false means the owning computation failed and the
// caller should compute for itself.
func (e *cacheEntry) wait(ctx context.Context) (*Result, bool, error) {
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	if e.res == nil {
		return nil, false, nil
	}
	return cloneResult(e.res), true, nil
}

// cloneResult deep-copies a Result so cache storage and cache hits never
// alias a slice the caller may mutate.
func cloneResult(r *Result) *Result {
	cp := *r
	cp.Colors = append([]int(nil), r.Colors...)
	if r.Diagnostics != nil {
		d := *r.Diagnostics
		d.SweepDegrees = append([]int(nil), r.Diagnostics.SweepDegrees...)
		cp.Diagnostics = &d
	}
	return &cp
}
