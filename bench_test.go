package distec

import (
	"io"
	"testing"

	"github.com/distec/distec/internal/bench"
	"github.com/distec/distec/internal/core"
	"github.com/distec/distec/internal/defective"
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/pseudoforest"
	"github.com/distec/distec/internal/randomized"
)

// The benchmarks below regenerate each experiment of DESIGN.md §2 at smoke
// scale (so `go test -bench=.` stays tractable); cmd/benchtables produces
// the full tables recorded in EXPERIMENTS.md. Each benchmark reports the
// experiment's key figure of merit as a custom metric alongside ns/op.

func benchExperiment(b *testing.B, runner func(bench.Scale) (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := runner(bench.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1_RoundsVsDelta(b *testing.B)     { benchExperiment(b, bench.E1RoundsVsDelta) }
func BenchmarkE2_RoundsVsN(b *testing.B)         { benchExperiment(b, bench.E2RoundsVsN) }
func BenchmarkE3_SlackReduction(b *testing.B)    { benchExperiment(b, bench.E3SlackReduction) }
func BenchmarkE4_DefectiveColoring(b *testing.B) { benchExperiment(b, bench.E4Defective) }
func BenchmarkE5_LevelExistence(b *testing.B)    { benchExperiment(b, bench.E5Levels) }
func BenchmarkE6_SpaceReduction(b *testing.B)    { benchExperiment(b, bench.E6SpaceReduction) }
func BenchmarkE7_ChainedReduction(b *testing.B)  { benchExperiment(b, bench.E7Chain) }
func BenchmarkE8_Fig5Partition(b *testing.B)     { benchExperiment(b, bench.E8Fig5) }
func BenchmarkE9_TheoryPreset(b *testing.B)      { benchExperiment(b, bench.E9TheoryPreset) }
func BenchmarkE11_VirtualSplit(b *testing.B)     { benchExperiment(b, bench.E11VirtualSplit) }
func BenchmarkE12_AlgorithmMatrix(b *testing.B)  { benchExperiment(b, bench.E12AlgorithmMatrix) }
func BenchmarkE13_AblationPhases(b *testing.B)   { benchExperiment(b, bench.E13AblationPhases) }
func BenchmarkE14_Engines(b *testing.B)          { benchExperiment(b, bench.E14Engines) }

// BenchmarkE10_Walkthrough covers E10 (Figures 1–4): the walkthrough's
// machinery — one full defective sweep plus remainder — on a small instance.
func BenchmarkE10_Walkthrough(b *testing.B) {
	g := graph.GNP(18, 0.33, 5)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	for i := 0; i < b.N; i++ {
		res, err := core.SolveGraph(in, core.Practical(), local.RunSequential)
		if err != nil {
			b.Fatal(err)
		}
		if res.Colors[0] < 0 {
			b.Fatal("uncolored")
		}
	}
}

// --- Micro-benchmarks of the substrates (throughput accounting). ---

func BenchmarkGraphEdgeConflictBuild(b *testing.B) {
	g := graph.RandomRegular(512, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := local.EdgeConflict(g)
		if tp.N() != g.M() {
			b.Fatal("bad topology")
		}
	}
}

func BenchmarkLinialReduce(b *testing.B) {
	g := graph.RandomRegular(512, 8, 2)
	tp := local.EdgeConflict(g)
	init := make([]int, tp.N())
	for i := range init {
		init[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linial.Reduce(tp, init, tp.N(), local.RunSequential); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDefectiveColoring(b *testing.B) {
	g := graph.RandomRegular(512, 16, 3)
	for i := 0; i < b.N; i++ {
		if _, err := defective.ColorGraph(g, nil, 2, local.RunSequential); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverBKO(b *testing.B) {
	g := graph.RandomRegular(256, 8, 4)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := core.SolveGraph(in, core.Practical(), local.RunSequential)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "LOCALrounds")
}

func BenchmarkSolverPR01(b *testing.B) {
	g := graph.RandomRegular(256, 8, 4)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	var rounds int
	for i := 0; i < b.N; i++ {
		_, stats, err := pseudoforest.Solve(g, nil, in.Lists, local.RunSequential)
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "LOCALrounds")
}

func BenchmarkSolverRandomized(b *testing.B) {
	g := graph.RandomRegular(256, 8, 4)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	var rounds int
	for i := 0; i < b.N; i++ {
		_, stats, err := randomized.Solve(g, nil, in.Lists, uint64(i), local.RunSequential)
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "LOCALrounds")
}

func BenchmarkEngineSequential(b *testing.B) { benchEngine(b, local.RunSequential) }
func BenchmarkEngineGoroutines(b *testing.B) { benchEngine(b, local.RunGoroutines) }

func benchEngine(b *testing.B, run local.Runner) {
	b.Helper()
	g := graph.RandomRegular(256, 8, 5)
	tp := local.EdgeConflict(g)
	init := make([]int, tp.N())
	for i := range init {
		init[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linial.Reduce(tp, init, tp.N(), run); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: writing all experiment tables to io.Discard at smoke scale is the
// full-harness benchmark (what CI tracks for regressions).
func BenchmarkAllTablesSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.WriteAll(io.Discard, bench.Smoke); err != nil {
			b.Fatal(err)
		}
	}
}
