package distec

import (
	"io"
	"testing"

	"github.com/distec/distec/internal/bench"
	"github.com/distec/distec/internal/core"
	"github.com/distec/distec/internal/defective"
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/pseudoforest"
	"github.com/distec/distec/internal/randomized"
	"github.com/distec/distec/internal/sharded"
	"github.com/distec/distec/internal/trace"
)

// The benchmarks below regenerate each experiment of DESIGN.md §2 at smoke
// scale (so `go test -bench=.` stays tractable); cmd/benchtables produces
// the full tables recorded in EXPERIMENTS.md. Each benchmark reports the
// experiment's key figure of merit as a custom metric alongside ns/op.

func benchExperiment(b *testing.B, runner func(bench.Scale) (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := runner(bench.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1_RoundsVsDelta(b *testing.B)     { benchExperiment(b, bench.E1RoundsVsDelta) }
func BenchmarkE2_RoundsVsN(b *testing.B)         { benchExperiment(b, bench.E2RoundsVsN) }
func BenchmarkE3_SlackReduction(b *testing.B)    { benchExperiment(b, bench.E3SlackReduction) }
func BenchmarkE4_DefectiveColoring(b *testing.B) { benchExperiment(b, bench.E4Defective) }
func BenchmarkE5_LevelExistence(b *testing.B)    { benchExperiment(b, bench.E5Levels) }
func BenchmarkE6_SpaceReduction(b *testing.B)    { benchExperiment(b, bench.E6SpaceReduction) }
func BenchmarkE7_ChainedReduction(b *testing.B)  { benchExperiment(b, bench.E7Chain) }
func BenchmarkE8_Fig5Partition(b *testing.B)     { benchExperiment(b, bench.E8Fig5) }
func BenchmarkE9_TheoryPreset(b *testing.B)      { benchExperiment(b, bench.E9TheoryPreset) }
func BenchmarkE11_VirtualSplit(b *testing.B)     { benchExperiment(b, bench.E11VirtualSplit) }
func BenchmarkE12_AlgorithmMatrix(b *testing.B)  { benchExperiment(b, bench.E12AlgorithmMatrix) }
func BenchmarkE13_AblationPhases(b *testing.B)   { benchExperiment(b, bench.E13AblationPhases) }
func BenchmarkE14_Engines(b *testing.B)          { benchExperiment(b, bench.E14Engines) }

// BenchmarkE10_Walkthrough covers E10 (Figures 1–4): the walkthrough's
// machinery — one full defective sweep plus remainder — on a small instance.
func BenchmarkE10_Walkthrough(b *testing.B) {
	g := graph.GNP(18, 0.33, 5)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	for i := 0; i < b.N; i++ {
		res, err := core.SolveGraph(in, core.Practical(), local.Sequential)
		if err != nil {
			b.Fatal(err)
		}
		if res.Colors[0] < 0 {
			b.Fatal("uncolored")
		}
	}
}

// --- Micro-benchmarks of the substrates (throughput accounting). ---

func BenchmarkGraphEdgeConflictBuild(b *testing.B) {
	g := graph.RandomRegular(512, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := local.EdgeConflict(g)
		if tp.N() != g.M() {
			b.Fatal("bad topology")
		}
	}
}

func BenchmarkLinialReduce(b *testing.B) {
	g := graph.RandomRegular(512, 8, 2)
	tp := local.EdgeConflict(g)
	init := make([]int, tp.N())
	for i := range init {
		init[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linial.Reduce(tp, init, tp.N(), local.Sequential); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDefectiveColoring(b *testing.B) {
	g := graph.RandomRegular(512, 16, 3)
	for i := 0; i < b.N; i++ {
		if _, err := defective.ColorGraph(g, nil, 2, local.Sequential); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverBKO(b *testing.B) {
	g := graph.RandomRegular(256, 8, 4)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := core.SolveGraph(in, core.Practical(), local.Sequential)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "LOCALrounds")
}

func BenchmarkSolverPR01(b *testing.B) {
	g := graph.RandomRegular(256, 8, 4)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	var rounds int
	for i := 0; i < b.N; i++ {
		_, stats, err := pseudoforest.Solve(g, nil, in.Lists, local.Sequential)
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "LOCALrounds")
}

func BenchmarkSolverRandomized(b *testing.B) {
	g := graph.RandomRegular(256, 8, 4)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	var rounds int
	for i := 0; i < b.N; i++ {
		_, stats, err := randomized.Solve(g, nil, in.Lists, uint64(i), local.Sequential)
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "LOCALrounds")
}

// extendFixture builds the shared ExtendColoring workload: a proper
// coloring of RandomRegular(2000, 24) with 1 in 16 edges left to complete
// and full-palette lists.
func extendFixture(b *testing.B) (g *graph.Graph, partial []int, lists [][]int, palette int) {
	b.Helper()
	g = graph.RandomRegular(2000, 24, 7)
	full, err := ColorEdges(g, Options{Algorithm: PR01})
	if err != nil {
		b.Fatal(err)
	}
	palette = full.Palette
	partial = make([]int, g.M())
	lists = make([][]int, g.M())
	all := make([]int, palette)
	for i := range all {
		all[i] = i
	}
	for e := 0; e < g.M(); e++ {
		lists[e] = all
		partial[e] = full.Colors[e]
		if e%16 == 0 {
			partial[e] = -1
		}
	}
	return g, partial, lists, palette
}

// BenchmarkExtendColoring measures completing an almost-finished partial
// coloring — the serving hot path ([Bar15] §1): most of the work is pruning
// the fixed neighbors' colors out of each uncolored edge's list.
func BenchmarkExtendColoring(b *testing.B) {
	g, partial, lists, palette := extendFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ExtendColoring(g, partial, lists, palette, Options{Algorithm: PR01})
		if err != nil {
			b.Fatal(err)
		}
		if res.Colors[0] < 0 {
			b.Fatal("uncolored")
		}
	}
}

// BenchmarkExtendColoringPrune isolates ExtendColoring's list-pruning stage
// (building the pruned instance, without solving it) — the part the
// color-indexed scratch slice speeds up over the previous per-edge maps.
func BenchmarkExtendColoringPrune(b *testing.B) {
	g, partial, lists, palette := extendFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := extendInstance(g, partial, lists, palette)
		if err != nil {
			b.Fatal(err)
		}
		if in.C != palette {
			b.Fatal("bad instance")
		}
	}
}

func BenchmarkEngineSequential(b *testing.B) { benchEngine(b, local.Sequential) }
func BenchmarkEngineGoroutines(b *testing.B) { benchEngine(b, local.Goroutines) }
func BenchmarkEngineSharded(b *testing.B)    { benchEngine(b, sharded.Default) }

func benchEngine(b *testing.B, run local.Engine) {
	b.Helper()
	g := graph.RandomRegular(256, 8, 5)
	tp := local.EdgeConflict(g)
	init := make([]int, tp.N())
	for i := range init {
		init[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linial.Reduce(tp, init, tp.N(), run); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFlood is the engine-comparison protocol: every entity broadcasts the
// largest index it has seen on all ports for a fixed number of rounds. It is
// deterministic, message-dense (one message per directed link per round),
// and algorithm-free, so the benchmark isolates pure engine overhead.
type benchFlood struct {
	v      local.View
	rounds int
	best   int
	out    []local.Message
}

func (f *benchFlood) Send(r int) []local.Message {
	for p := range f.out {
		f.out[p] = f.best
	}
	return f.out
}

func (f *benchFlood) Receive(r int, inbox []local.Message) bool {
	for _, m := range inbox {
		if m != nil {
			if x := m.(int); x > f.best {
				f.best = x
			}
		}
	}
	return r >= f.rounds
}

// BenchmarkEngines compares the three engines on ≥10⁵-edge workloads
// (results are recorded in BENCH_engines.json). Ring and regular flood on
// the edge-conflict topology (one entity per edge, so entity-count scaling
// dominates); complete-bipartite floods on the node topology, where the
// per-round message volume of ~2m dominates. The goroutine engine pays
// Θ(entities) barrier operations and one channel operation per message per
// round; the sharded engine pays two pool-wide barriers per round and
// batched slice appends.
func BenchmarkEngines(b *testing.B) {
	const rounds = 8
	workloads := []struct {
		name  string
		build func() *local.Topology
	}{
		// 10⁵ edge entities of conflict degree 2.
		{"ring-100k", func() *local.Topology { return local.EdgeConflict(graph.Cycle(100_000)) }},
		// 10⁵ edge entities of conflict degree 14.
		{"regular-100k", func() *local.Topology { return local.EdgeConflict(graph.RandomRegular(25_000, 8, 6)) }},
		// K(320,320): 102 400 edges; ~2·10⁵ messages per round on the node topology.
		{"bipartite-102k", func() *local.Topology { return local.FromGraph(graph.CompleteBipartite(320, 320)) }},
	}
	for _, w := range workloads {
		tp := w.build()
		factory := func(v local.View) local.Protocol {
			return &benchFlood{v: v, rounds: rounds, best: v.Index, out: make([]local.Message, v.Degree)}
		}
		for _, eng := range []local.Engine{local.Sequential, local.Goroutines, sharded.Default} {
			b.Run(w.name+"/"+eng.Name(), func(b *testing.B) {
				var stats local.Stats
				for i := 0; i < b.N; i++ {
					var err error
					if stats, err = eng.Run(tp, factory, nil); err != nil {
						b.Fatal(err)
					}
					if stats.Rounds != rounds {
						b.Fatalf("rounds = %d, want %d", stats.Rounds, rounds)
					}
				}
				b.ReportMetric(float64(stats.Messages)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmsg/s")
			})
		}
	}
}

// BenchmarkEnginesTraced is the ring-100k flood with a live tracer: the
// traced-ON cost — one timestamp pair, one RoundEvent append, and a
// handful of counter reads per round, amortized over 10⁵ entities.
// Compare against BenchmarkEngines/ring-100k/sequential (nil tracer);
// BENCH_trace.json records both sides of the gate.
func BenchmarkEnginesTraced(b *testing.B) {
	const rounds = 8
	tp := local.EdgeConflict(graph.Cycle(100_000))
	factory := func(v local.View) local.Protocol {
		return &benchFlood{v: v, rounds: rounds, best: v.Index, out: make([]local.Message, v.Degree)}
	}
	var stats local.Stats
	for i := 0; i < b.N; i++ {
		tr := trace.New()
		var err error
		if stats, err = local.Sequential.Run(tp, factory, &local.Options{Trace: tr}); err != nil {
			b.Fatal(err)
		}
		if stats.Rounds != rounds {
			b.Fatalf("rounds = %d, want %d", stats.Rounds, rounds)
		}
		if got := len(tr.Spans()[0].Rounds); got != rounds {
			b.Fatalf("traced %d rounds, want %d", got, rounds)
		}
	}
	b.ReportMetric(float64(stats.Messages)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmsg/s")
}

// Guard: writing all experiment tables to io.Discard at smoke scale is the
// full-harness benchmark (what CI tracks for regressions).
func BenchmarkAllTablesSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.WriteAll(io.Discard, bench.Smoke); err != nil {
			b.Fatal(err)
		}
	}
}
