package distec

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/metrics"
	"github.com/distec/distec/internal/serve"
)

// ErrPoolClosed is returned by Pool job submissions after Close.
var ErrPoolClosed = serve.ErrClosed

// ErrRoundLimit marks (via errors.Is) runs that exceeded the engine round
// cap — a livelocked or diverging protocol, not a property of the input.
var ErrRoundLimit = local.ErrRoundLimit

// ErrProtocolPanic marks (via errors.Is) pool job errors produced by
// converting a panic inside an isolated execution — a server-side defect,
// never a property of the input.
var ErrProtocolPanic = local.ErrPanic

// PoolOptions configures NewPool. The zero value selects one worker lane
// per core, a queue depth of four jobs per lane, and the default small-job
// threshold.
type PoolOptions struct {
	// Workers is the number of worker lanes the pool owns (default: one per
	// core). All protocol execution of all jobs happens on these lanes.
	Workers int
	// QueueDepth bounds the number of jobs in flight at once; further
	// submissions block — backpressure — until a slot frees or their
	// context is done. Default: 4×Workers.
	QueueDepth int
	// SmallJob is the entity-count threshold at or below which one protocol
	// execution runs whole on a single lane via the sequential engine (the
	// fastest engine for small instances) instead of being sharded across
	// lanes. Negative disables the fast path. Default: 4096.
	SmallJob int
	// CacheSize bounds the result cache (entries): repeated identical
	// ColorEdges requests — same graph, algorithm, palette, and seed — are
	// served from memory, and identical requests in flight at the same time
	// are computed once (single-flight). All algorithms are deterministic
	// (Randomized is keyed by its seed), so a cached result is bit-identical
	// to recomputing it. Negative disables caching. Default: 32.
	CacheSize int
	// Metrics, when set, exposes the pool's scheduler counters
	// (distec_serve_*) and result-cache counters (distec_cache_*) on the
	// registry, and records per-job latency histograms. The registry type
	// lives in an internal package, so only code inside this module (the
	// daemon, benchmarks) can set it; the field is invisible plumbing for
	// everyone else and nil keeps the pre-registry behavior exactly.
	Metrics *metrics.Registry
}

// PoolStats is a point-in-time snapshot of a Pool's metrics.
type PoolStats struct {
	// Workers is the number of worker lanes; QueueDepth the admission bound.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Waiting counts jobs blocked on admission; Running counts admitted
	// jobs currently executing.
	Waiting int64 `json:"waiting"`
	Running int64 `json:"running"`
	// Job counts by outcome. Submitted = Completed + Failed + Cancelled +
	// still in flight.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// Protocol executions by route: whole-on-one-lane sequential, sliced
	// single-lane, fanned-out multi-lane.
	SequentialRuns uint64 `json:"sequential_runs"`
	SlicedRuns     uint64 `json:"sliced_runs"`
	FanoutRuns     uint64 `json:"fanout_runs"`
	// AdmissionRejected counts jobs that never got an admission slot
	// (context done while queued, or pool closed): the queueing-collapse
	// signal under open-loop load.
	AdmissionRejected uint64 `json:"admission_rejected"`
	// CacheHits counts requests served from the result cache (including
	// single-flight waiters); cached requests do not appear in the job or
	// run counters above, which cover computed jobs only. CacheMisses
	// counts requests that computed and filled an entry; CacheCoalesced
	// the subset of hits that waited on an identical in-flight computation
	// instead of a ready entry (single-flight deduplication).
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheCoalesced uint64 `json:"cache_coalesced"`
	// Rounds and Messages total the LOCAL cost served so far.
	Rounds   int64 `json:"rounds"`
	Messages int64 `json:"messages"`
	// LatencyP50/P99 are job-latency quantiles over a window of recent jobs.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
}

// Pool is the multi-tenant serving layer: one long-lived pool of worker
// lanes multiplexing many concurrent coloring jobs, where each one-shot
// ColorEdges call would spin up and tear down an engine of its own. Small
// executions run whole on one lane; large ones are sharded across the lanes
// round by round (or, on a single lane, run in bounded time slices), so a
// huge graph cannot starve the queue. Repeated identical ColorEdges
// requests are served from a bounded result cache with single-flight
// deduplication. Results are bit-identical to the one-shot API on the
// Sequential engine — cached ones included, since every algorithm is
// deterministic.
//
// Jobs carry a context: cancelling it (or exceeding its deadline) aborts
// the job's executions within about one round. A Pool is safe for
// concurrent use; see NewPool, and Close when done.
type Pool struct {
	p         *serve.Pool
	cache     *poolCache // nil when disabled
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
}

// NewPool starts a serving pool. Close it when done.
func NewPool(o PoolOptions) *Pool {
	p := &Pool{p: serve.New(serve.Options{
		Workers:    o.Workers,
		QueueDepth: o.QueueDepth,
		SmallJob:   o.SmallJob,
		Metrics:    o.Metrics,
	})}
	size := o.CacheSize
	if size == 0 {
		size = 32
	}
	if size > 0 {
		p.cache = newPoolCache(size)
	}
	if o.Metrics != nil {
		o.Metrics.CounterFunc("distec_cache_hits_total", "ColorEdges requests served from the result cache (single-flight waiters included).", p.hits.Load)
		o.Metrics.CounterFunc("distec_cache_misses_total", "ColorEdges requests that computed and filled a cache entry.", p.misses.Load)
		o.Metrics.CounterFunc("distec_cache_coalesced_total", "Cache hits that waited on an identical in-flight computation (single-flight).", p.coalesced.Load)
		o.Metrics.GaugeFunc("distec_cache_entries", "Ready entries in the result cache.", func() float64 {
			if p.cache == nil {
				return 0
			}
			return float64(p.cache.len())
		})
	}
	return p
}

// ColorEdges mirrors the package-level ColorEdges on the pool's shared
// lanes, with repeated identical requests served from the pool's result
// cache (see PoolOptions.CacheSize). Options.Engine and Options.Shards are
// ignored: the pool routes every protocol execution itself (see
// PoolOptions.SmallJob).
func (p *Pool) ColorEdges(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	// A traced request wants the execution, not its memoized result: a
	// cache hit runs zero rounds, so serving one would return an empty
	// trace (and filling the cache from a traced run would be fine, but
	// keeping traced flights out of the single-flight path means a slow
	// diagnostic run never becomes the flight other waiters coalesce on).
	if p.cache == nil || opts.Trace != nil {
		return p.colorUniform(ctx, g, opts)
	}
	// Cache hits must still honor the after-Close contract: without this,
	// a previously-seen request would succeed after Close.
	if p.p.Closed() {
		return nil, ErrPoolClosed
	}
	key := p.cache.key(g, opts)
	var entry *cacheEntry
	for entry == nil {
		e, owner, pending := p.cache.lookup(key)
		if owner {
			entry = e
			p.misses.Add(1)
			continue
		}
		res, ok, err := e.wait(ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			p.hits.Add(1)
			if pending {
				p.coalesced.Add(1)
			}
			return res, nil
		}
		// The owning computation failed and dropped its entry; re-elect —
		// the next lookup makes one waiter the new owner and the rest wait
		// on it, so a failed owner costs one retry, not a thundering herd
		// of independent recomputations.
	}
	// The owner MUST complete its entry, or waiters block until their own
	// deadlines and the key is poisoned forever. A panic in the computation
	// (recovered by net/http in the daemon) must therefore drop the entry
	// on its way up.
	filled := false
	defer func() {
		if !filled {
			p.cache.fill(entry, nil, errFlightAbandoned)
		}
	}()
	res, err := p.colorUniform(ctx, g, opts)
	filled = true
	p.cache.fill(entry, res, err)
	return res, err
}

// errFlightAbandoned marks a cache flight whose computation panicked; it
// only ever reaches poolCache.fill (dropping the entry), never a caller.
var errFlightAbandoned = errors.New("distec: cache flight abandoned")

// colorUniform computes a uniform ColorEdges request on the pool.
func (p *Pool) colorUniform(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	in, err := uniformInstanceFor(g, opts)
	if err != nil {
		return nil, err
	}
	return p.color(ctx, g, in, opts)
}

// ColorEdgesList mirrors the package-level ColorEdgesList on the pool's
// shared lanes.
func (p *Pool) ColorEdgesList(ctx context.Context, g *Graph, lists [][]int, palette int, opts Options) (*Result, error) {
	in, err := listInstance(g, lists, palette)
	if err != nil {
		return nil, err
	}
	return p.color(ctx, g, in, opts)
}

// ExtendColoring mirrors the package-level ExtendColoring on the pool's
// shared lanes.
func (p *Pool) ExtendColoring(ctx context.Context, g *Graph, partial []int, lists [][]int, palette int, opts Options) (*Result, error) {
	in, err := extendInstance(g, partial, lists, palette)
	if err != nil {
		return nil, err
	}
	res, err := p.color(ctx, g, in, opts)
	if err != nil {
		return nil, err
	}
	mergePartial(res, partial)
	return res, nil
}

// color runs one coloring job on the pool.
func (p *Pool) color(ctx context.Context, g *Graph, in *listcolor.Instance, opts Options) (*Result, error) {
	var res *Result
	err := p.p.Do(ctx, func(eng local.Engine) error {
		var err error
		res, err = colorOn(g, in, opts, eng)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Stats returns a snapshot of the pool's metrics. The cache counters are
// read hit-before-miss so the snapshot never shows more hits than the
// misses plus in-flight computations that could have produced them (the
// inner serve.Pool.Stats orders its own reads the same way).
func (p *Pool) Stats() PoolStats {
	hits, coalesced := p.hits.Load(), p.coalesced.Load()
	s := p.p.Stats()
	return PoolStats{
		Workers:           s.Workers,
		QueueDepth:        s.QueueDepth,
		Waiting:           s.Waiting,
		Running:           s.Running,
		Submitted:         s.Submitted,
		Completed:         s.Completed,
		Failed:            s.Failed,
		Cancelled:         s.Cancelled,
		AdmissionRejected: s.AdmissionRejected,
		SequentialRuns:    s.SequentialRuns,
		SlicedRuns:        s.SlicedRuns,
		FanoutRuns:        s.FanoutRuns,
		CacheHits:         hits,
		CacheMisses:       p.misses.Load(),
		CacheCoalesced:    coalesced,
		Rounds:            s.Rounds,
		Messages:          s.Messages,
		LatencyP50:        s.LatencyP50,
		LatencyP99:        s.LatencyP99,
	}
}

// Close stops admission, waits for in-flight jobs, and stops the lanes.
// Jobs submitted after Close fail with ErrPoolClosed. Idempotent.
func (p *Pool) Close() { p.p.Close() }
