package distec

import (
	"context"
	"testing"

	"github.com/distec/distec/internal/metrics"
)

// BenchmarkPoolMetricsOverhead measures what the metrics registry costs on
// the one-shot color hot path: two identical pools, one bare and one
// instrumented, computing the same request (cache disabled so every
// iteration takes the full submit→execute→observe path). The acceptance
// gate recorded in BENCH_serve.json is instrumented ≤ 2% over bare.
func BenchmarkPoolMetricsOverhead(b *testing.B) {
	g := RandomRegular(80, 6, 1)
	for _, tc := range []struct {
		name         string
		instrumented bool
	}{{"bare", false}, {"instrumented", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var reg *metrics.Registry
			if tc.instrumented {
				reg = metrics.New() // fresh per run: families register once
			}
			p := NewPool(PoolOptions{Workers: 2, CacheSize: -1, Metrics: reg})
			defer p.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.ColorEdges(ctx, g, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPoolMetricsOverheadCached is the same comparison on the
// cache-hit path, where a request costs only a lookup and a clone — the
// worst case for relative overhead, since the absolute work is tiny.
func BenchmarkPoolMetricsOverheadCached(b *testing.B) {
	g := RandomRegular(80, 6, 1)
	for _, tc := range []struct {
		name         string
		instrumented bool
	}{{"bare", false}, {"instrumented", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var reg *metrics.Registry
			if tc.instrumented {
				reg = metrics.New()
			}
			p := NewPool(PoolOptions{Workers: 2, Metrics: reg})
			defer p.Close()
			ctx := context.Background()
			if _, err := p.ColorEdges(ctx, g, Options{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.ColorEdges(ctx, g, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
