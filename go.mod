module github.com/distec/distec

go 1.22
