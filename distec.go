// Package distec is a deterministic distributed edge coloring library: a
// complete implementation of "Distributed Edge Coloring in Time
// Quasi-Polylogarithmic in Delta" (Balliu, Kuhn, Olivetti — PODC 2020) in
// the LOCAL model, together with every substrate the paper builds on
// (Linial's coloring, Cole–Vishkin reductions, defective edge colorings) and
// the classical baselines it compares against.
//
// The unit of work is a Graph; algorithms color its edges so that edges
// sharing an endpoint receive different colors. All algorithms are honest
// synchronous message-passing programs: they can run on a deterministic
// sequential engine, with one goroutine per network entity communicating
// over channels, or on a sharded worker pool that batches messages between
// cores — with bit-identical results — and they report the number of LOCAL
// rounds consumed.
//
// Quickstart:
//
//	g := distec.RandomRegular(1024, 16, 42)
//	res, err := distec.ColorEdges(g, distec.Options{})
//	// res.Colors[e] ∈ [0, 2Δ−1), res.Rounds = LOCAL rounds
//
// The headline algorithm (AlgorithmBKO) solves the harder
// (deg(e)+1)-list edge coloring problem: see ColorEdgesList.
package distec

import (
	"fmt"

	"github.com/distec/distec/internal/core"
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/pseudoforest"
	"github.com/distec/distec/internal/randomized"
	"github.com/distec/distec/internal/sharded"
	"github.com/distec/distec/internal/trace"
	"github.com/distec/distec/internal/verify"
	"github.com/distec/distec/internal/vertexcolor"
	"github.com/distec/distec/internal/vizing"
)

// Graph is an undirected simple graph; see NewGraph and the generators.
type Graph = graph.Graph

// EdgeID identifies an edge of a Graph in insertion order.
type EdgeID = graph.EdgeID

// NewGraph returns an empty graph on n nodes. Add edges with AddEdge.
func NewGraph(n int) *Graph { return graph.New(n) }

// Algorithm selects the coloring algorithm.
type Algorithm string

const (
	// BKO is the paper's algorithm (Theorem 4.1) with the practical
	// parameter preset: quasi-polylogarithmic-in-Δ round growth, solves
	// (deg(e)+1)-list instances. This is the default.
	BKO Algorithm = "bko"
	// BKOTheory is the paper's algorithm with the paper's own constants
	// (β = log⁴ Δ̄, p = √Δ̄). At feasible Δ̄ these provably reduce to the
	// base case — see EXPERIMENTS.md E9 — but every lemma precondition is
	// asserted at runtime.
	BKOTheory Algorithm = "bko-theory"
	// PR01 is the Panconesi–Rizzi-style O(Δ + log* n) pseudoforest
	// baseline; also solves list instances.
	PR01 Algorithm = "pr01"
	// GreedyClasses is the trivial O(Δ̄² + log* n) baseline: Linial classes
	// colored greedily one class per round.
	GreedyClasses Algorithm = "greedy-classes"
	// Randomized is the classic O(log n) randomized trials baseline
	// [Lub86]; deterministic for a fixed Options.Seed.
	Randomized Algorithm = "randomized"
	// Vizing is the sequential fan/alternating-path algorithm behind
	// Vizing's theorem: the only solver accepting palettes below the slack
	// bound Δ̄+1, down to the guaranteed optimum-plus-one of Δ+1 colors.
	// For ColorEdges, Palette 0 selects Δ+1 (not 2Δ−1), and any explicit
	// Palette ≥ Δ+1 is accepted. On list and extension instances it reduces
	// to the sequential greedy, which the (deg(e)+1) slack invariant makes
	// complete and list-respecting. It is not a LOCAL protocol: the engine
	// choice is accepted but irrelevant (results are identical on all
	// engines by construction), Result.Rounds reports the number of
	// augmentations, and Result.Messages the color assignments written. See
	// internal/vizing.
	Vizing Algorithm = "vizing"
)

// Engine selects how protocols execute.
type Engine string

const (
	// Sequential runs entities in a deterministic loop (default; fastest
	// for small instances).
	Sequential Engine = "sequential"
	// Goroutines runs one goroutine per entity with channel links and
	// barrier-synchronized rounds. Results are identical to Sequential.
	Goroutines Engine = "goroutines"
	// Sharded partitions entities across a fixed worker pool (one shard per
	// core by default; see Options.Shards) with batched message handoff at
	// round boundaries. Results are bit-identical to Sequential; it is the
	// engine of choice for large instances (10⁵–10⁶ edges).
	Sharded Engine = "sharded"
)

// Options configures a coloring run. The zero value selects BKO on the
// sequential engine with palette 2Δ−1.
type Options struct {
	// Algorithm selects the solver (default BKO).
	Algorithm Algorithm
	// Engine selects the execution engine (default Sequential).
	Engine Engine
	// Shards is the worker count for the Sharded engine (default: one per
	// core). Ignored by the other engines.
	Shards int
	// Palette overrides the palette size for ColorEdges (default 2Δ−1, or
	// Δ+1 for the Vizing algorithm). Must be at least Δ̄+1 to keep the
	// instance (deg(e)+1)-solvable — except under Vizing, whose fan/path
	// augmentation only needs Palette ≥ Δ+1.
	Palette int
	// Seed feeds the Randomized algorithm's simulated coin flips.
	Seed uint64
	// Trace, when non-nil, receives round-resolved execution telemetry
	// for the run: one span per protocol execution with per-round events,
	// exportable as Chrome trace-event JSON (Trace.WriteChrome) or rolled
	// up with Trace.Summary. Traced requests bypass a Pool's result cache
	// — a cache hit executes no rounds, so there would be nothing to
	// trace. Nil (the default) costs nothing.
	Trace *trace.Trace
}

// Result reports a coloring and its LOCAL-model cost.
type Result struct {
	// Colors maps EdgeID to the chosen color, −1 for inactive edges.
	Colors []int
	// Rounds is the number of synchronous LOCAL rounds consumed (edge-
	// entity rounds; multiply by 2 and add O(1) for plain node rounds).
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// Palette is the palette size the instance was solved over.
	Palette int
	// ColorsUsed is the number of distinct colors in the output.
	ColorsUsed int
	// Diagnostics holds BKO instrumentation (nil for other algorithms).
	Diagnostics *Diagnostics
}

// Diagnostics exposes the BKO solver's instrumentation counters; see the
// paper mapping in DESIGN.md.
type Diagnostics struct {
	OuterSweeps    int   // Lemma 4.2 sweeps
	DefectiveCalls int   // §4.1 defective colorings computed
	ClassInstances int   // slack-β sub-instances solved
	ChainLevels    int   // Lemma 4.3 applications
	PhaseInstances int   // E(1) phase sub-colorings
	Deferred       int   // practical-mode deferrals
	SweepDegrees   []int // max uncolored degree per sweep (halving trace)
	Eq2Worst       float64
}

func (o Options) engine() (local.Engine, error) {
	switch o.Engine {
	case "", Sequential:
		return local.Sequential, nil
	case Goroutines:
		return local.Goroutines, nil
	case Sharded:
		return sharded.New(sharded.Config{Shards: o.Shards}), nil
	default:
		return nil, fmt.Errorf("distec: unknown engine %q", o.Engine)
	}
}

// ColorEdges computes a proper edge coloring of g with palette
// {0, …, Palette−1} (default 2Δ−1; Δ+1 for Algorithm Vizing). All edges
// participate.
func ColorEdges(g *Graph, opts Options) (*Result, error) {
	in, err := uniformInstanceFor(g, opts)
	if err != nil {
		return nil, err
	}
	return colorInstance(g, in, opts)
}

// ColorEdgesList solves the (deg(e)+1)-list edge coloring problem: each
// edge e must be colored from lists[e] (strictly ascending values in
// [0, palette)), and |lists[e]| must exceed deg(e). This is the paper's
// primary problem statement.
func ColorEdgesList(g *Graph, lists [][]int, palette int, opts Options) (*Result, error) {
	in, err := listInstance(g, lists, palette)
	if err != nil {
		return nil, err
	}
	return colorInstance(g, in, opts)
}

// ExtendColoring completes a partial edge coloring — the paper's motivating
// use case for list coloring ([Bar15], §1). Edges with partial[e] ≥ 0 keep
// their colors; every other edge is colored from lists[e] minus the colors
// of its fixed neighbors. The pruned list must remain strictly larger than
// the edge's uncolored conflict degree, which holds in particular whenever
// |lists[e]| > deg(e) and the partial coloring is proper.
func ExtendColoring(g *Graph, partial []int, lists [][]int, palette int, opts Options) (*Result, error) {
	run, err := opts.engine()
	if err != nil {
		return nil, err
	}
	return extendOn(g, partial, lists, palette, opts, run)
}

// extendOn is ExtendColoring on an explicit engine — the seam shared by the
// one-shot API and the dynamic-coloring repair path, whose pool-backed
// sessions hand in a job-bound engine over the shared worker lanes.
func extendOn(g *Graph, partial []int, lists [][]int, palette int, opts Options, run local.Engine) (*Result, error) {
	in, err := extendInstance(g, partial, lists, palette)
	if err != nil {
		return nil, err
	}
	res, err := colorOn(g, in, opts, run)
	if err != nil {
		return nil, err
	}
	mergePartial(res, partial)
	return res, nil
}

// effectivePaletteFor resolves the ColorEdges palette default per
// algorithm: 0 selects 2Δ−1, except for Vizing, whose natural regime is
// Δ+1 (at least 1 either way). Shared by uniformInstanceFor and the pool
// result cache, whose keys must not distinguish a defaulted palette from
// the same value named explicitly.
func effectivePaletteFor(g *Graph, alg Algorithm, palette int) int {
	if palette != 0 {
		return palette
	}
	var c int
	if alg == Vizing {
		c = g.MaxDegree() + 1
	} else {
		c = 2*g.MaxDegree() - 1
	}
	if c < 1 {
		c = 1
	}
	return c
}

// uniformInstanceFor builds the full-palette instance of ColorEdges with
// the algorithm's feasibility bound: the LOCAL solvers need the slack bound
// palette > Δ̄, while Vizing's augmentation needs only palette ≥ Δ+1
// (Vizing's theorem) — such instances violate the slack invariant by
// design, so they skip the slack validation the solvable case requires.
func uniformInstanceFor(g *Graph, opts Options) (*listcolor.Instance, error) {
	c := effectivePaletteFor(g, opts.Algorithm, opts.Palette)
	if opts.Algorithm == Vizing {
		if delta := g.MaxDegree(); c <= delta {
			return nil, fmt.Errorf("distec: palette %d below Δ+1=%d (vizing guarantees Δ+1)", c, delta+1)
		}
		return listcolor.NewUniform(g, c), nil
	}
	if dbar := g.MaxEdgeDegree(); c <= dbar {
		return nil, fmt.Errorf("distec: palette %d not greater than Δ̄=%d", c, dbar)
	}
	return listcolor.NewUniform(g, c), nil
}

// listInstance builds and validates the instance of ColorEdgesList.
func listInstance(g *Graph, lists [][]int, palette int) (*listcolor.Instance, error) {
	if len(lists) != g.M() {
		return nil, fmt.Errorf("distec: %d lists for %d edges", len(lists), g.M())
	}
	active := make([]bool, g.M())
	for e := range active {
		active[e] = true
	}
	in := &listcolor.Instance{G: g, Active: active, Lists: lists, C: palette}
	if err := in.Validate(1); err != nil {
		return nil, err
	}
	return in, nil
}

// extendInstance builds and validates the instance of ExtendColoring: the
// uncolored edges, with the fixed neighbors' colors pruned from their lists.
func extendInstance(g *Graph, partial []int, lists [][]int, palette int) (*listcolor.Instance, error) {
	if len(partial) != g.M() || len(lists) != g.M() {
		return nil, fmt.Errorf("distec: partial/lists sized %d/%d for %d edges", len(partial), len(lists), g.M())
	}
	// The fixed part must itself be proper.
	for e := 0; e < g.M(); e++ {
		if partial[e] < 0 {
			continue
		}
		var conflict error
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if conflict == nil && partial[f] == partial[e] {
				conflict = fmt.Errorf("distec: partial coloring improper at edges %d,%d (color %d)", e, f, partial[e])
			}
		})
		if conflict != nil {
			return nil, conflict
		}
	}
	active := make([]bool, g.M())
	pruned := make([][]int, g.M())
	// used is a color-indexed scratch, stamped with e+1 while pruning edge
	// e: one O(palette) allocation for the whole call, where a per-edge set
	// would cost O(deg) map operations per uncolored edge. Colors outside
	// [0, palette) cannot collide with (validated) list entries, so they
	// simply stay unstamped.
	var used []int
	if palette > 0 {
		used = make([]int, palette)
	}
	for e := 0; e < g.M(); e++ {
		if partial[e] >= 0 {
			continue
		}
		active[e] = true
		stamp := e + 1
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if c := partial[f]; c >= 0 && c < len(used) {
				used[c] = stamp
			}
		})
		hit := 0
		for _, c := range lists[e] {
			if c >= 0 && c < len(used) && used[c] == stamp {
				hit++
			}
		}
		if hit == 0 {
			// Nothing to prune: share the caller's list (read-only by
			// contract) instead of copying it.
			pruned[e] = lists[e]
			continue
		}
		out := make([]int, 0, len(lists[e])-hit)
		for _, c := range lists[e] {
			if c >= 0 && c < len(used) && used[c] == stamp {
				continue
			}
			out = append(out, c)
		}
		pruned[e] = out
	}
	in := &listcolor.Instance{G: g, Active: active, Lists: pruned, C: palette}
	if err := in.Validate(1); err != nil {
		return nil, err
	}
	return in, nil
}

// mergePartial copies the fixed colors of a partial coloring back into an
// extension result and recounts the distinct colors.
func mergePartial(res *Result, partial []int) {
	for e, c := range partial {
		if c >= 0 {
			res.Colors[e] = c
		}
	}
	res.ColorsUsed = verify.CountColors(res.Colors)
}

func colorInstance(g *Graph, in *listcolor.Instance, opts Options) (*Result, error) {
	run, err := opts.engine()
	if err != nil {
		return nil, err
	}
	return colorOn(g, in, opts, run)
}

// colorOn solves the instance with the selected algorithm on an explicit
// engine — the seam shared by the one-shot API (engine from Options) and
// Pool (a job-bound engine over the shared worker lanes).
func colorOn(g *Graph, in *listcolor.Instance, opts Options, run local.Engine) (*Result, error) {
	// The tracer rides on the engine value, not on per-run Options: the
	// algorithm packages call run.Run with their own Options, and the
	// wrapper injects the tracer into every one of them. With a nil
	// tracer Traced returns run unchanged.
	if opts.Trace != nil {
		opts.Trace.SetLabel(string(opts.Algorithm))
	}
	run = local.Traced(run, opts.Trace)
	var (
		colors []int
		stats  local.Stats
		diag   *Diagnostics
		err    error
	)
	switch opts.Algorithm {
	case "", BKO, BKOTheory:
		params := core.Practical()
		if opts.Algorithm == BKOTheory {
			params = core.Theory(1, 1)
		}
		var res *core.Result
		res, err = core.SolveGraph(in, params, run)
		if err == nil {
			colors, stats = res.Colors, res.Stats
			diag = &Diagnostics{
				OuterSweeps:    res.Trace.OuterSweeps,
				DefectiveCalls: res.Trace.DefectiveCalls,
				ClassInstances: res.Trace.ClassInstances,
				ChainLevels:    res.Trace.ChainLevels,
				PhaseInstances: res.Trace.PhaseInstances,
				Deferred:       res.Trace.Deferred,
				SweepDegrees:   res.Trace.SweepDegrees,
				Eq2Worst:       res.Trace.Eq2Worst,
			}
		}
	case PR01:
		colors, stats, err = pseudoforest.Solve(g, in.Active, in.Lists, run)
	case GreedyClasses:
		colors, stats, err = listcolor.SolveBase(in, nil, 0, run)
	case Randomized:
		colors, stats, err = randomized.Solve(g, in.Active, in.Lists, opts.Seed, run)
	case Vizing:
		// Sequential by nature: no protocol execution, identical on every
		// engine. The one engine service it does use is cancellation:
		// engines exposing a liveness check (the pool's job engine) get it
		// polled between edges, so deadlines still abort a large run.
		var interrupt func() error
		if ip, ok := run.(interface{ Interrupt() error }); ok {
			interrupt = ip.Interrupt
		}
		// No rounds to trace, but the wall time still earns a span so a
		// traced Vizing run shows up in summaries and exports.
		span := opts.Trace.StartSpan("vizing", g.M())
		colors, stats, err = vizing.Solve(g, in.Active, in.Lists, in.C, interrupt)
		span.End(err)
	default:
		return nil, fmt.Errorf("distec: unknown algorithm %q", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Colors:      colors,
		Rounds:      stats.Rounds,
		Messages:    stats.Messages,
		Palette:     in.C,
		ColorsUsed:  verify.CountColors(colors),
		Diagnostics: diag,
	}, nil
}

// ColorVertices computes a (Δ+1)-vertex coloring of g in O(Δ² + log* n)
// rounds ([Lin87, SV93]). The paper frames (2Δ−1)-edge coloring as the
// line-graph special case of this more general problem (§1); the vertex
// variant is provided as classical context — its best known Δ-dependence is
// still polynomial, which is exactly the gap the paper closes for edges.
func ColorVertices(g *Graph, opts Options) (*Result, error) {
	run, err := opts.engine()
	if err != nil {
		return nil, err
	}
	colors, stats, err := vertexcolor.Solve(g, run)
	if err != nil {
		return nil, err
	}
	return &Result{
		Colors:     colors,
		Rounds:     stats.Rounds,
		Messages:   stats.Messages,
		Palette:    g.MaxDegree() + 1,
		ColorsUsed: verify.CountColors(colors),
	}, nil
}

// VerifyVertices checks that colors is a proper vertex coloring of g.
func VerifyVertices(g *Graph, colors []int) error {
	return vertexcolor.Verify(g, colors)
}

// Verify checks that colors is a proper edge coloring of g (every edge
// colored, conflicting edges distinct).
func Verify(g *Graph, colors []int) error {
	return verify.EdgeColoring(g, nil, colors)
}

// VerifyList additionally checks that every edge's color belongs to its list.
func VerifyList(g *Graph, lists [][]int, colors []int) error {
	if err := verify.EdgeColoring(g, nil, colors); err != nil {
		return err
	}
	return verify.ListRespecting(g, nil, lists, colors)
}
