package distec

import (
	"testing"

	"github.com/distec/distec/internal/bench"
)

// BenchmarkVizing measures the Δ+1 regime (recorded in BENCH_vizing.json):
//
//   - static-delta-plus-1: one full vizing run over the 10⁵-edge
//     BenchmarkDynamic graph at palette Δ+1 — the coloring no other solver
//     in the repository can produce. The reported "augmentations" metric is
//     the number of edges the greedy pass could not serve.
//   - static-2delta-baseline: the same graph through the default BKO at
//     2Δ−1, the pre-existing regime, for the colors-vs-time trade.
//   - churn-tight: a single-edge update stream on a Dynamic session pinned
//     to the fixed palette Δ+1 (degree-capped stream, so Δ+1 stays tight at
//     every update): inserts fall through greedy → target-color repair →
//     Vizing augmentation, and none may be rejected. Reported metrics
//     split the inserts by tier.
func BenchmarkVizing(b *testing.B) {
	b.Run("static-delta-plus-1", func(b *testing.B) {
		g := benchDynamicGraph()
		palette := g.MaxDegree() + 1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ColorEdges(g, Options{Algorithm: Vizing, Palette: palette})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.StopTimer()
				if err := Verify(g, res.Colors); err != nil {
					b.Fatal(err)
				}
				if res.ColorsUsed > palette {
					b.Fatalf("%d colors used at palette %d", res.ColorsUsed, palette)
				}
				b.ReportMetric(float64(res.Rounds), "augmentations")
				b.StartTimer()
			}
		}
	})
	b.Run("static-2delta-baseline", func(b *testing.B) {
		g := benchDynamicGraph()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ColorEdges(g, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("churn-tight", func(b *testing.B) {
		g := benchDynamicGraph()
		delta := g.MaxDegree()
		palette := delta + 1
		init, err := ColorEdges(g, Options{Algorithm: Vizing, Palette: palette})
		if err != nil {
			b.Fatal(err)
		}
		d, err := NewDynamicFrom(g, init.Colors, DynamicOptions{Options: Options{Palette: palette}})
		if err != nil {
			b.Fatal(err)
		}
		ops := bench.ChurnCapped(g, b.N, delta, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := ops[i]
			if op.Delete {
				err = d.Delete(op.U, op.V)
			} else {
				_, _, err = d.Insert(op.U, op.V)
			}
			if err != nil {
				b.Fatalf("update %d (%+v): %v", i, op, err)
			}
		}
		b.StopTimer()
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
		st := d.Stats()
		b.ReportMetric(float64(st.GreedyInserts), "greedy")
		b.ReportMetric(float64(st.Repairs), "repairs")
		b.ReportMetric(float64(st.Augmentations), "augmentations")
	})
}
